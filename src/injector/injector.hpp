// The automated fault-injection campaign engine (paper §2.2, Fig 2).
//
// For each function in a library the driver parses its man page (prototype
// + semantic hints, memoized per campaign), then probes every argument with
// every test type of its class: each probe runs in a FRESH simulated process
// (the analogue of the paper's one-child-per-probe driver) with the
// remaining arguments held at their safest values, under a reduced step
// budget (the watchdog timeout). Outcomes are reaped into TypeVerdicts and
// folded into DerivedChecks — the robust API the wrapper generator consumes.
//
// The paper notes every probe is an independent child process, i.e. the
// campaign is embarrassingly parallel. This engine exploits that:
//
//   1. all probe coordinates (function, argument, test type) are enumerated
//      up front in canonical order,
//   2. they fan out over a small work-stealing thread pool (config.jobs),
//   3. the expensive setup (construct + load the whole catalog + seal) runs
//      ONCE per campaign into a shared pristine linker::TestbedState; every
//      worker forks an O(metadata) shell from it, and each probe resets by
//      dropping the pages it privatized — no per-worker deep snapshot, no
//      byte copy-back (config.snapshot_reset; see linker/testbed.hpp),
//   4. the fan-out unit is one ARGUMENT, not one probe: the worker walks the
//      argument's test types guided by the subsumption lattice
//      (typelattice/subsume.hpp) — endpoints first, then the widest
//      unresolved implication gap — and once a dominating type passes, every
//      dominated type's verdict is synthesized instead of executed
//      (config.prune). Safe values for the non-injected arguments are
//      fabricated once per (function, worker) into a base snapshot that
//      every probe of the function restores, instead of once per probe.
//
// Determinism guarantee: results are bit-identical for every jobs value,
// either reset mode, and pruning on or off. Each (arg, type) fabrication
// seeds its own Rng from mix(seed, hash(function), arg, test type) — no
// shared mutable RNG — every probe call starts from the same restored base
// snapshot, and verdicts are reduced in canonical probe-coordinate order
// after the fan-out, so neither scheduling nor the walk order can influence
// a single byte of the output. The executed/implied *split* (engine
// telemetry only) is deterministic per jobs value: sequential campaigns
// learn signature profiles live, parallel campaigns walk against a profile
// snapshot frozen before the fan-out and merge what they learned in
// canonical order afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "injector/robust_spec.hpp"
#include "linker/executable.hpp"
#include "linker/testbed.hpp"
#include "parser/manpage.hpp"
#include "support/result.hpp"
#include "typelattice/subsume.hpp"

namespace healers::support {
class ThreadPool;
}

namespace healers::injector {

struct InjectorConfig {
  std::uint64_t seed = 42;
  int variants = 2;                       // random instances of fuzzy test types
  std::uint64_t probe_step_budget = 2'000'000;  // watchdog per probe
  std::uint64_t testbed_heap = 256 << 10;
  std::uint64_t testbed_stack = 64 << 10;
  // Restricts the campaign to these functions (the demand-driven surface
  // scope, docs/debloat.md: probe only what an executable can reach). Empty
  // probes the whole library. UNLIKE the engine knobs below, this changes
  // the campaign document — scoped campaigns are cached under a separate
  // key and never exported to the portable spec cache.
  std::vector<std::string> only_functions;
  // Campaign-engine knobs. None affects results (see the determinism
  // guarantee above) — only how fast the campaign runs.
  int jobs = 1;                // worker threads; 0 = hardware concurrency
  bool snapshot_reset = true;  // restore a per-worker snapshot between probes
                               // (false: rebuild a fresh process per probe)
  bool prune = true;           // subsumption pruning: synthesize implied
                               // verdicts, skip the probes (--no-prune off)
};

class FaultInjector {
 public:
  // The catalog supplies the testbed environment: every probe process loads
  // all catalog libraries so safe values (e.g. a live FILE*) can be built.
  FaultInjector(const linker::LibraryCatalog& catalog, InjectorConfig config = {});
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Probes one function of `lib`. Fails when the man page cannot be parsed
  // or the symbol does not exist.
  [[nodiscard]] Result<RobustSpec> probe_function(const simlib::SharedLibrary& lib,
                                                  const std::string& name);

  // Probes every function in the library (Fig 2's full pipeline). Functions
  // marked NORETURN are recorded but not probed. `progress`, when set, is
  // called with each function name (in order) as the campaign is enumerated.
  [[nodiscard]] Result<CampaignResult> run_campaign(
      const simlib::SharedLibrary& lib,
      const std::function<void(const std::string&)>& progress = {});

  // Probes actually executed so far (across calls) — for throughput benches.
  // Relaxed atomic: workers bump it concurrently during a campaign.
  [[nodiscard]] std::uint64_t probes_executed() const noexcept {
    return probes_executed_.load(std::memory_order_relaxed);
  }
  // Probe cases whose outcome was synthesized from the implication lattice
  // (or the integral value memo) instead of executed.
  [[nodiscard]] std::uint64_t probes_implied() const noexcept {
    return probes_implied_.load(std::memory_order_relaxed);
  }

  // Adopts a shared cross-campaign implication-profile store (the Toolkit's,
  // so every campaign it runs warms the next). Without one, the injector
  // learns into a private store — intra-injector warm starts still work.
  // Call before the first probe runs.
  void set_profile_store(std::shared_ptr<lattice::ImplicationProfileStore> store) noexcept;
  [[nodiscard]] const std::shared_ptr<lattice::ImplicationProfileStore>& profile_store()
      const noexcept {
    return profiles_;
  }

  // --- shared pristine testbed state ---------------------------------------
  // Adopts a prebuilt pristine state (e.g. the Toolkit's cached one) so this
  // campaign skips setup entirely and forks straight from the shared image.
  // Ignored unless the state was built with this injector's exact machine
  // config. Call before the first probe runs.
  void set_testbed_state(std::shared_ptr<const linker::TestbedState> state) noexcept;
  // The pristine state this injector forks from (built lazily on the first
  // snapshot-reset probe when none was adopted); null until then. The
  // Toolkit caches this across campaigns so every derive — including every
  // in-flight request in the derivation server — forks from one image.
  [[nodiscard]] std::shared_ptr<const linker::TestbedState> testbed_state() const noexcept {
    return state_;
  }

  // The console input every probe testbed starts with.
  [[nodiscard]] static const std::string& probe_stdin();

  // Cumulative engine telemetry (fork/privatize/drop counters) across every
  // probe this injector has run; run_campaign stores the per-campaign delta
  // in CampaignResult::engine.
  [[nodiscard]] CampaignEngineStats engine_stats() const noexcept;

 private:
  // A memoized man page: parsed once per (library, function) per injector,
  // not once per probe_function call.
  struct PageEntry {
    bool ok = false;
    parser::ManPage page;
    std::string error;
  };
  // One probe coordinate at (function, argument) granularity: the worker
  // walks the argument's whole test-type lattice so implications resolve
  // inside one task (the per-(function, arg, type) implication cache is the
  // walk's `resolved` set, consulted before any probe runs).
  struct ProbeTask {
    const parser::ManPage* page = nullptr;
    std::uint64_t fn_hash = 0;
    std::size_t spec_index = 0;
    std::size_t arg_index = 0;  // 0-based
    parser::TypeClass cls = parser::TypeClass::kIntegral;
    std::string signature;  // implication-profile key (class + annotation shape)
  };
  struct TypeOutput {
    TypeVerdict verdict;
    // Injected values of integral probes, in case order — the raw material
    // for range derivation when every case of the type passed.
    std::vector<std::int64_t> int_values;
  };
  struct TaskOutput {
    std::vector<TypeOutput> typed;  // canonical test_types_for order
  };
  // A worker's testbed plus the per-function base: safe values for every
  // argument are fabricated once per (function, worker) and snapshotted, so
  // each probe restores the base instead of re-fabricating (fresh mode
  // rebuilds the same base from scratch per probe — the deep oracle).
  struct WorkerBed {
    std::unique_ptr<linker::Process> bed;
    const parser::ManPage* base_page = nullptr;
    linker::Process::Snapshot base;
    std::vector<simlib::SimValue> safe_args;
  };

  const PageEntry& page_for(const simlib::SharedLibrary& lib, const simlib::Symbol& symbol);

  // The machine config every probe process (and the shared pristine state)
  // is built with.
  [[nodiscard]] mem::MachineConfig machine_config() const noexcept;
  // Builds (or adopts) the shared pristine state; no-op when already set.
  void ensure_state();
  // Forks one probe shell from the pristine state (snapshot-reset mode) or
  // constructs a fresh full process (fresh mode).
  [[nodiscard]] std::unique_ptr<linker::Process> make_bed();
  // Folds a retiring bed's COW counters into the engine totals. Every bed
  // must be harvested exactly once, just before it is destroyed or rebuilt.
  void harvest(const linker::Process& bed) noexcept;

  // Rebuilds `wb` to the per-function base: every argument at its safe value
  // on a pristine testbed. Fork mode restores the base snapshot (taken on
  // the first probe of the function per worker); fresh mode constructs a new
  // process and re-fabricates every safe value from scratch.
  void bed_to_base(WorkerBed& wb, const simlib::SharedLibrary& lib, const ProbeTask& task);
  // Fabricates safe values for every argument of task's function into
  // wb.safe_args (deterministic order, left to right).
  void fabricate_safe_args(WorkerBed& wb, const ProbeTask& task);
  // Executes every case of one test type against the argument: reset to
  // base, fabricate the case, supervised call, fold. `int_memo`, when set,
  // answers integral cases whose injected value was already called for this
  // argument (prune mode only).
  [[nodiscard]] TypeOutput run_type(WorkerBed& wb, const simlib::SharedLibrary& lib,
                                    const ProbeTask& task, lattice::TestTypeId id,
                                    std::map<std::int64_t, linker::CallOutcome>* int_memo);
  // Synthesizes an implied-pass verdict for `id` from dominator `from` —
  // byte-identical to the executed verdict, zero testbed work.
  [[nodiscard]] TypeOutput synthesize_pass(const ProbeTask& task, lattice::TestTypeId id,
                                           lattice::TestTypeId from);
  // Walks one argument's test-type lattice: ordering by `profile` (may be
  // null = cold), executing unresolved types, synthesizing implied passes.
  // Output is re-sorted into canonical test_types_for order.
  [[nodiscard]] TaskOutput run_task(WorkerBed& wb, const simlib::SharedLibrary& lib,
                                    const ProbeTask& task,
                                    const lattice::SignatureProfile* profile);
  // Records what a finished walk learned into the shared profile store.
  void learn_task(const ProbeTask& task, const TaskOutput& out);
  // Fans the tasks out over the pool (inline when jobs == 1) and returns
  // outputs indexed like `tasks` — the canonical reduction order.
  [[nodiscard]] std::vector<TaskOutput> execute(const simlib::SharedLibrary& lib,
                                                const std::vector<ProbeTask>& tasks);
  // Builds the specs for `pages` (one per function, campaign order) by
  // enumerating coordinates, executing, and reducing canonically.
  [[nodiscard]] std::vector<RobustSpec> build_specs(
      const simlib::SharedLibrary& lib,
      const std::vector<std::pair<const simlib::Symbol*, const parser::ManPage*>>& functions);

  const linker::LibraryCatalog& catalog_;
  InjectorConfig config_;
  std::atomic<std::uint64_t> probes_executed_{0};
  std::atomic<std::uint64_t> probes_implied_{0};
  std::atomic<std::uint64_t> verdicts_implied_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> args_probed_{0};
  std::atomic<std::uint64_t> args_warm_{0};

  // Cross-campaign implication profiles (shared via set_profile_store, or a
  // private store created by the constructor).
  std::shared_ptr<lattice::ImplicationProfileStore> profiles_;

  // Shared pristine state (snapshot-reset mode). Immutable once built;
  // workers fork from it concurrently (atomic refcounts only).
  std::shared_ptr<const linker::TestbedState> state_;

  // Engine telemetry, bumped by workers (relaxed — read only after joins).
  std::atomic<std::uint64_t> states_forked_{0};
  std::atomic<std::uint64_t> testbeds_built_{0};
  std::atomic<std::uint64_t> pages_sealed_{0};
  std::atomic<std::uint64_t> pages_faulted_{0};
  std::atomic<std::uint64_t> pages_privatized_{0};
  std::atomic<std::uint64_t> pages_dropped_{0};

  std::mutex pages_mutex_;
  std::map<std::string, PageEntry> pages_;  // node-stable; keyed soname:function

  std::unique_ptr<support::ThreadPool> pool_;  // created on first parallel run
};

// Derives the wrapper-enforceable checks from an argument's verdicts (and
// the annotation, which supplies ranges/roles the probes confirm).
// Exposed for targeted unit tests.
[[nodiscard]] DerivedChecks derive_checks(const ArgSpec& arg, const parser::ArgAnnotation* note);

}  // namespace healers::injector
