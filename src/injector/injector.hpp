// The automated fault-injection driver (paper §2.2, Fig 2).
//
// For each function in a library the driver parses its man page (prototype
// + semantic hints), then probes every argument with every test type of its
// class: each probe runs in a FRESH simulated process (the analogue of the
// paper's one-child-per-probe driver) with the remaining arguments held at
// their safest values, under a reduced step budget (the watchdog timeout).
// Outcomes are reaped into TypeVerdicts and folded into DerivedChecks —
// the robust API the wrapper generator consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "injector/robust_spec.hpp"
#include "linker/executable.hpp"
#include "support/result.hpp"

namespace healers::injector {

struct InjectorConfig {
  std::uint64_t seed = 42;
  int variants = 2;                       // random instances of fuzzy test types
  std::uint64_t probe_step_budget = 2'000'000;  // watchdog per probe
  std::uint64_t testbed_heap = 256 << 10;
  std::uint64_t testbed_stack = 64 << 10;
};

class FaultInjector {
 public:
  // The catalog supplies the testbed environment: every probe process loads
  // all catalog libraries so safe values (e.g. a live FILE*) can be built.
  FaultInjector(const linker::LibraryCatalog& catalog, InjectorConfig config = {});

  // Probes one function of `lib`. Fails when the man page cannot be parsed
  // or the symbol does not exist.
  [[nodiscard]] Result<RobustSpec> probe_function(const simlib::SharedLibrary& lib,
                                                  const std::string& name);

  // Probes every function in the library (Fig 2's full pipeline). Functions
  // marked NORETURN are recorded but not probed. `progress`, when set, is
  // called with each function name before probing.
  [[nodiscard]] Result<CampaignResult> run_campaign(
      const simlib::SharedLibrary& lib,
      const std::function<void(const std::string&)>& progress = {});

  // Probes actually executed so far (across calls) — for throughput benches.
  [[nodiscard]] std::uint64_t probes_executed() const noexcept { return probes_executed_; }

 private:
  [[nodiscard]] linker::CallOutcome run_probe(const simlib::SharedLibrary& lib,
                                              const parser::ManPage& page,
                                              std::size_t inject_index_0based,
                                              lattice::TestTypeId id, std::size_t case_index,
                                              bool& case_existed);

  const linker::LibraryCatalog& catalog_;
  InjectorConfig config_;
  Rng rng_;
  std::uint64_t probes_executed_ = 0;
};

// Derives the wrapper-enforceable checks from an argument's verdicts (and
// the annotation, which supplies ranges/roles the probes confirm).
// Exposed for targeted unit tests.
[[nodiscard]] DerivedChecks derive_checks(const ArgSpec& arg, const parser::ArgAnnotation* note);

}  // namespace healers::injector
