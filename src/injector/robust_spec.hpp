// Robust-API specifications — the output of fault injection (paper Fig 2:
// "searching robust argument types ... generates the robust API for a
// shared library").
//
// For every argument of every probed function we record the verdict of each
// test type (how many probes, how many robustness failures, by outcome
// kind) and fold the profile into DerivedChecks: the exact preconditions a
// fault-containment wrapper must enforce so the call cannot crash the
// process. Specs serialize to self-describing XML (demo §3.1's declaration
// files carry these) and parse back, so campaigns can run offline and
// wrapper generation can consume stored specs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "linker/process.hpp"
#include "parser/ctypes.hpp"
#include "typelattice/testtype.hpp"
#include "xml/xml.hpp"

namespace healers::injector {

// Aggregated result of probing one argument with one test type.
struct TypeVerdict {
  lattice::TestTypeId id = lattice::TestTypeId::kNull;
  int probes = 0;
  int failures = 0;  // crash + hang + abort + hijack
  int crashes = 0;
  int hangs = 0;
  int aborts = 0;
  std::string first_failure;  // detail of the first failing probe

  // Subsumption-pruning provenance: true when this verdict was synthesized
  // from a dominating type's pass instead of executed (implied_from names
  // the dominator). In-memory only, like ArgSpec::passing_int_values — an
  // implied verdict is byte-identical to the executed one, so serializing
  // the provenance would break the pruned-vs-unpruned XML identity.
  bool implied = false;
  lattice::TestTypeId implied_from = lattice::TestTypeId::kNull;

  [[nodiscard]] bool failed() const noexcept { return failures > 0; }
};

// The wrapper-enforceable preconditions derived from an argument's profile.
struct DerivedChecks {
  bool require_nonnull = false;
  bool require_mapped = false;      // pointer must be a mapped, readable address
  bool require_writable = false;    // ... and writable
  bool require_terminated = false;  // must contain a NUL within the scan cap
  bool require_size_check = false;  // destination size matters (tiny buffers failed)
  bool require_heap_pointer = false;  // only live malloc results acceptable
  bool require_file = false;          // only live FILE* acceptable
  bool require_callback = false;      // only registered application callbacks
  std::optional<std::pair<std::int64_t, std::int64_t>> range;  // integral domain

  [[nodiscard]] bool any() const noexcept {
    return require_nonnull || require_mapped || require_writable || require_terminated ||
           require_size_check || require_heap_pointer || require_file || require_callback ||
           range.has_value();
  }
};

struct ArgSpec {
  int index = 0;  // 1-based
  std::string ctype;
  parser::TypeClass cls = parser::TypeClass::kIntegral;
  std::vector<TypeVerdict> verdicts;
  DerivedChecks checks;
  // Concrete integral probe values that did NOT fail — the raw material for
  // range derivation. Campaign-internal; not serialized.
  std::vector<std::int64_t> passing_int_values;

  // Human name of the weakest safe argument type, e.g.
  // "non-NULL writable NUL-terminated buffer (size-checked)".
  [[nodiscard]] std::string safe_type_name() const;
  [[nodiscard]] const TypeVerdict* verdict(lattice::TestTypeId id) const noexcept;
};

struct RobustSpec {
  std::string function;
  std::string library;
  std::string declaration;  // canonical prototype text
  std::vector<ArgSpec> args;
  std::uint64_t total_probes = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;
  std::uint64_t aborts = 0;
  bool skipped_noreturn = false;  // exit/abort are not probed

  [[nodiscard]] xml::Node to_xml() const;
  [[nodiscard]] static Result<RobustSpec> from_xml(const xml::Node& node);
};

// Operational counters from the campaign engine's COW state machinery: how
// many probe states were forked from the shared pristine image, how many
// full processes had to be built, and the page traffic of the write barrier
// (DESIGN.md, "COW testbed states"). Telemetry, NOT results: several of
// these depend on worker count, reset mode, and whether a cached pristine
// image was shared, so they are excluded from to_xml()/from_xml() — the
// campaign document stays bit-identical across --jobs and reset modes.
// `healers derive --stats` appends them as a separate <engine> node.
//
// The probes_* / *_implied counters report subsumption pruning (DESIGN.md,
// "Subsumption pruning"): how many probe cases actually ran vs were
// synthesized from the implication lattice, the integral value-memo hits,
// and how many arguments were ordered by a warm cross-campaign profile.
// Like the page counters, they are telemetry: the executed/implied split
// can shift with worker count (profile learning merges differently at
// jobs > 1) while the campaign document stays bit-identical.
struct CampaignEngineStats {
  std::uint64_t states_forked = 0;     // probe-state activations (fork/reset)
  std::uint64_t testbeds_built = 0;    // full process constructions
  std::uint64_t pages_sealed = 0;      // pages frozen building pristine images
  std::uint64_t pages_faulted = 0;     // lazy copy-ins from the shared image
  std::uint64_t pages_privatized = 0;  // COW breaks by probe writes
  std::uint64_t pages_dropped = 0;     // private pages discarded by resets
  std::uint64_t probes_executed = 0;   // probe cases that ran a supervised call
  std::uint64_t probes_implied = 0;    // probe cases synthesized, zero testbed work
  std::uint64_t verdicts_implied = 0;  // whole type verdicts synthesized
  std::uint64_t memo_case_hits = 0;    // integral cases answered by the value memo
  std::uint64_t args_probed = 0;       // argument walks run
  std::uint64_t args_warm_ordered = 0;  // ... ordered by a learned signature profile

  // probes_implied / (probes_executed + probes_implied); 0 when idle.
  [[nodiscard]] double implication_hit_rate() const noexcept;
  // args_warm_ordered / args_probed; 0 when idle.
  [[nodiscard]] double warm_start_ratio() const noexcept;

  [[nodiscard]] xml::Node to_xml() const;
};

// A whole library's campaign output.
struct CampaignResult {
  std::string library;
  std::uint64_t seed = 0;
  std::vector<RobustSpec> specs;
  // Engine telemetry for the run that produced this result (zero for results
  // parsed back from XML). Deliberately not serialized by to_xml(); see
  // CampaignEngineStats.
  CampaignEngineStats engine;

  [[nodiscard]] std::uint64_t total_probes() const noexcept;
  [[nodiscard]] std::uint64_t total_failures() const noexcept;
  [[nodiscard]] std::size_t functions_with_failures() const noexcept;

  [[nodiscard]] const RobustSpec* spec(const std::string& function) const noexcept;

  // The Fig 2 report: one row per function with probe/failure counts and
  // the derived safe types.
  [[nodiscard]] std::string to_table() const;
  [[nodiscard]] xml::Node to_xml() const;
  [[nodiscard]] static Result<CampaignResult> from_xml(const xml::Node& node);
};

}  // namespace healers::injector
