#include "injector/robust_spec.hpp"

#include <algorithm>
#include <sstream>

#include "typelattice/subsume.hpp"

namespace healers::injector {

const TypeVerdict* ArgSpec::verdict(lattice::TestTypeId id) const noexcept {
  for (const TypeVerdict& v : verdicts) {
    if (v.id == id) return &v;
  }
  return nullptr;
}

std::string ArgSpec::safe_type_name() const {
  if (cls == parser::TypeClass::kPointer) {
    if (checks.require_file) return "live FILE* from fopen";
    if (checks.require_heap_pointer) return "live malloc'd pointer";
    if (checks.require_callback) return "registered callback function pointer";
    std::vector<std::string> parts;
    if (checks.require_nonnull) parts.emplace_back("non-NULL");
    if (checks.require_writable) parts.emplace_back("writable");
    else if (checks.require_mapped) parts.emplace_back("mapped");
    if (checks.require_terminated) parts.emplace_back("NUL-terminated");
    if (parts.empty()) return "any pointer";
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out += ' ';
      out += parts[i];
    }
    out += " buffer";
    if (checks.require_size_check) out += " (size-checked)";
    return out;
  }
  if (cls == parser::TypeClass::kIntegral) {
    if (checks.range.has_value()) {
      return "int in [" + std::to_string(checks.range->first) + ", " +
             std::to_string(checks.range->second) + "]";
    }
    return "any int";
  }
  if (cls == parser::TypeClass::kFloating) return "any double";
  return "void";
}

namespace {

void checks_to_xml(const DerivedChecks& checks, xml::Node& node) {
  xml::Node& el = node.add_child("checks");
  auto flag = [&el](const char* key, bool value) {
    if (value) el.set_attr(key, "1");
  };
  flag("nonnull", checks.require_nonnull);
  flag("mapped", checks.require_mapped);
  flag("writable", checks.require_writable);
  flag("terminated", checks.require_terminated);
  flag("size", checks.require_size_check);
  flag("heapptr", checks.require_heap_pointer);
  flag("file", checks.require_file);
  flag("callback", checks.require_callback);
  if (checks.range.has_value()) {
    el.set_attr("range_lo", std::to_string(checks.range->first));
    el.set_attr("range_hi", std::to_string(checks.range->second));
  }
}

DerivedChecks checks_from_xml(const xml::Node* el) {
  DerivedChecks checks;
  if (el == nullptr) return checks;
  checks.require_nonnull = el->attr_int("nonnull", 0) != 0;
  checks.require_mapped = el->attr_int("mapped", 0) != 0;
  checks.require_writable = el->attr_int("writable", 0) != 0;
  checks.require_terminated = el->attr_int("terminated", 0) != 0;
  checks.require_size_check = el->attr_int("size", 0) != 0;
  checks.require_heap_pointer = el->attr_int("heapptr", 0) != 0;
  checks.require_file = el->attr_int("file", 0) != 0;
  checks.require_callback = el->attr_int("callback", 0) != 0;
  if (el->attr("range_lo") != nullptr && el->attr("range_hi") != nullptr) {
    checks.range = {el->attr_int("range_lo", 0), el->attr_int("range_hi", 0)};
  }
  return checks;
}

const char* class_name(parser::TypeClass cls) {
  switch (cls) {
    case parser::TypeClass::kPointer: return "pointer";
    case parser::TypeClass::kIntegral: return "integral";
    case parser::TypeClass::kFloating: return "floating";
    case parser::TypeClass::kVoid: return "void";
  }
  return "?";
}

parser::TypeClass class_from_name(const std::string& name) {
  if (name == "pointer") return parser::TypeClass::kPointer;
  if (name == "floating") return parser::TypeClass::kFloating;
  if (name == "void") return parser::TypeClass::kVoid;
  return parser::TypeClass::kIntegral;
}

// TestTypeId <-> string for serialization: the reverse of lattice::to_string
// as a map built once — campaign parsing calls this per <verdict>, and the
// old linear rescan re-stringified all 24 ids per lookup.
std::optional<lattice::TestTypeId> test_type_from_name(const std::string& name) {
  using lattice::TestTypeId;
  static const std::map<std::string, TestTypeId> kByName = [] {
    std::map<std::string, TestTypeId> names;
    for (std::size_t i = 0; i < lattice::kTestTypeCount; ++i) {
      const auto id = static_cast<TestTypeId>(i);
      names.emplace(lattice::to_string(id), id);
    }
    return names;
  }();
  const auto it = kByName.find(name);
  if (it == kByName.end()) return std::nullopt;
  return it->second;
}

}  // namespace

xml::Node RobustSpec::to_xml() const {
  xml::Node node("robust-spec");
  node.set_attr("function", function);
  node.set_attr("library", library);
  node.set_attr("probes", std::to_string(total_probes));
  node.set_attr("failures", std::to_string(total_failures));
  node.set_attr("crashes", std::to_string(crashes));
  node.set_attr("hangs", std::to_string(hangs));
  node.set_attr("aborts", std::to_string(aborts));
  if (skipped_noreturn) node.set_attr("skipped", "noreturn");
  node.add_text_child("prototype", declaration);
  for (const ArgSpec& arg : args) {
    xml::Node& arg_el = node.add_child("arg");
    arg_el.set_attr("index", std::to_string(arg.index));
    arg_el.set_attr("ctype", arg.ctype);
    arg_el.set_attr("class", class_name(arg.cls));
    arg_el.set_attr("safe-type", arg.safe_type_name());
    for (const TypeVerdict& v : arg.verdicts) {
      xml::Node& v_el = arg_el.add_child("verdict");
      v_el.set_attr("type", lattice::to_string(v.id));
      v_el.set_attr("probes", std::to_string(v.probes));
      v_el.set_attr("failures", std::to_string(v.failures));
      v_el.set_attr("crashes", std::to_string(v.crashes));
      v_el.set_attr("hangs", std::to_string(v.hangs));
      v_el.set_attr("aborts", std::to_string(v.aborts));
      if (!v.first_failure.empty()) v_el.set_attr("first", v.first_failure);
    }
    checks_to_xml(arg.checks, arg_el);
  }
  return node;
}

Result<RobustSpec> RobustSpec::from_xml(const xml::Node& node) {
  if (node.name() != "robust-spec") return Error("expected <robust-spec>");
  RobustSpec spec;
  const std::string* function = node.attr("function");
  if (function == nullptr) return Error("<robust-spec> missing function attribute");
  spec.function = *function;
  if (const std::string* library = node.attr("library")) spec.library = *library;
  spec.total_probes = static_cast<std::uint64_t>(node.attr_int("probes", 0));
  spec.total_failures = static_cast<std::uint64_t>(node.attr_int("failures", 0));
  spec.crashes = static_cast<std::uint64_t>(node.attr_int("crashes", 0));
  spec.hangs = static_cast<std::uint64_t>(node.attr_int("hangs", 0));
  spec.aborts = static_cast<std::uint64_t>(node.attr_int("aborts", 0));
  spec.skipped_noreturn = node.attr("skipped") != nullptr;
  if (const xml::Node* proto = node.child("prototype")) spec.declaration = proto->text();
  for (const xml::Node* arg_el : node.children_named("arg")) {
    ArgSpec arg;
    arg.index = static_cast<int>(arg_el->attr_int("index", 0));
    if (arg.index < 1) return Error("<arg> with bad index");
    if (const std::string* ctype = arg_el->attr("ctype")) arg.ctype = *ctype;
    const std::string* cls = arg_el->attr("class");
    arg.cls = class_from_name(cls == nullptr ? "integral" : *cls);
    for (const xml::Node* v_el : arg_el->children_named("verdict")) {
      TypeVerdict v;
      const std::string* type_name = v_el->attr("type");
      if (type_name == nullptr) return Error("<verdict> missing type");
      const auto id = test_type_from_name(*type_name);
      if (!id.has_value()) return Error("<verdict> unknown type " + *type_name);
      v.id = *id;
      v.probes = static_cast<int>(v_el->attr_int("probes", 0));
      v.failures = static_cast<int>(v_el->attr_int("failures", 0));
      v.crashes = static_cast<int>(v_el->attr_int("crashes", 0));
      v.hangs = static_cast<int>(v_el->attr_int("hangs", 0));
      v.aborts = static_cast<int>(v_el->attr_int("aborts", 0));
      if (const std::string* first = v_el->attr("first")) v.first_failure = *first;
      arg.verdicts.push_back(std::move(v));
    }
    arg.checks = checks_from_xml(arg_el->child("checks"));
    spec.args.push_back(std::move(arg));
  }
  return spec;
}

std::uint64_t CampaignResult::total_probes() const noexcept {
  std::uint64_t n = 0;
  for (const RobustSpec& spec : specs) n += spec.total_probes;
  return n;
}

std::uint64_t CampaignResult::total_failures() const noexcept {
  std::uint64_t n = 0;
  for (const RobustSpec& spec : specs) n += spec.total_failures;
  return n;
}

std::size_t CampaignResult::functions_with_failures() const noexcept {
  std::size_t n = 0;
  for (const RobustSpec& spec : specs) {
    if (spec.total_failures > 0) ++n;
  }
  return n;
}

const RobustSpec* CampaignResult::spec(const std::string& function) const noexcept {
  for (const RobustSpec& s : specs) {
    if (s.function == function) return &s;
  }
  return nullptr;
}

std::string CampaignResult::to_table() const {
  std::ostringstream out;
  out << "robust API derivation for " << library << " (seed " << seed << ")\n";
  out << "----------------------------------------------------------------------\n";
  out << "function        probes  fail  crash  hang  abort  derived safe types\n";
  out << "----------------------------------------------------------------------\n";
  for (const RobustSpec& spec : specs) {
    std::string name = spec.function;
    name.resize(15, ' ');
    out << name << ' ';
    if (spec.skipped_noreturn) {
      out << "   (noreturn: skipped)\n";
      continue;
    }
    auto col = [&out](std::uint64_t v, int width) {
      std::string s = std::to_string(v);
      out << std::string(width > static_cast<int>(s.size())
                             ? static_cast<std::size_t>(width) - s.size()
                             : 0,
                         ' ')
          << s << ' ';
    };
    col(spec.total_probes, 6);
    col(spec.total_failures, 5);
    col(spec.crashes, 6);
    col(spec.hangs, 5);
    col(spec.aborts, 6);
    out << ' ';
    bool first = true;
    for (const ArgSpec& arg : spec.args) {
      if (!first) out << "; ";
      out << "a" << arg.index << ": " << arg.safe_type_name();
      first = false;
    }
    if (spec.args.empty()) out << "(no arguments)";
    out << '\n';
  }
  out << "----------------------------------------------------------------------\n";
  out << "totals: " << specs.size() << " functions, " << total_probes() << " probes, "
      << total_failures() << " robustness failures in " << functions_with_failures()
      << " functions\n";
  return out.str();
}

double CampaignEngineStats::implication_hit_rate() const noexcept {
  const std::uint64_t total = probes_executed + probes_implied;
  return total == 0 ? 0.0 : static_cast<double>(probes_implied) / static_cast<double>(total);
}

double CampaignEngineStats::warm_start_ratio() const noexcept {
  return args_probed == 0 ? 0.0
                          : static_cast<double>(args_warm_ordered) /
                                static_cast<double>(args_probed);
}

xml::Node CampaignEngineStats::to_xml() const {
  xml::Node node("engine");
  node.set_attr("states-forked", std::to_string(states_forked));
  node.set_attr("testbeds-built", std::to_string(testbeds_built));
  node.set_attr("pages-sealed", std::to_string(pages_sealed));
  node.set_attr("pages-faulted", std::to_string(pages_faulted));
  node.set_attr("pages-privatized", std::to_string(pages_privatized));
  node.set_attr("pages-dropped", std::to_string(pages_dropped));
  node.set_attr("probes-executed", std::to_string(probes_executed));
  node.set_attr("probes-implied", std::to_string(probes_implied));
  node.set_attr("verdicts-implied", std::to_string(verdicts_implied));
  node.set_attr("memo-case-hits", std::to_string(memo_case_hits));
  node.set_attr("args-probed", std::to_string(args_probed));
  node.set_attr("args-warm-ordered", std::to_string(args_warm_ordered));
  return node;
}

xml::Node CampaignResult::to_xml() const {
  xml::Node node("campaign");
  node.set_attr("library", library);
  node.set_attr("seed", std::to_string(seed));
  for (const RobustSpec& spec : specs) {
    node.add_child(spec.to_xml());
  }
  return node;
}

Result<CampaignResult> CampaignResult::from_xml(const xml::Node& node) {
  if (node.name() != "campaign") return Error("expected <campaign>");
  CampaignResult out;
  if (const std::string* library = node.attr("library")) out.library = *library;
  out.seed = static_cast<std::uint64_t>(node.attr_int("seed", 0));
  for (const xml::Node* spec_el : node.children_named("robust-spec")) {
    auto spec = RobustSpec::from_xml(*spec_el);
    if (!spec.ok()) return spec.error();
    out.specs.push_back(std::move(spec).take());
  }
  return out;
}

}  // namespace healers::injector
