#include "support/rng.hpp"

namespace healers {

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next() % span);
}

}  // namespace healers
