#include "support/thread_pool.hpp"

#include <algorithm>

namespace healers::support {

ThreadPool::ThreadPool(unsigned workers) {
  workers = std::max(1u, workers);
  deques_.resize(workers);
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

unsigned ThreadPool::hardware_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::run_one(unsigned self) {
  Task task;
  {
    std::lock_guard lock(mutex_);
    std::deque<Task>& own = deques_[self];
    if (!own.empty()) {
      task = std::move(own.front());
      own.pop_front();
    } else {
      // Steal from the back of a sibling — the opposite end from the owner's
      // pops, so long runs of tasks migrate in chunks, not one by one.
      const unsigned count = workers();
      for (unsigned offset = 1; offset < count && !task; ++offset) {
        std::deque<Task>& victim = deques_[(self + offset) % count];
        if (victim.empty()) continue;
        task = std::move(victim.back());
        victim.pop_back();
      }
    }
    if (!task) return false;
  }
  task(self);
  {
    std::lock_guard lock(mutex_);
    --unfinished_;
    if (unfinished_ == 0) wake_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(unsigned self) {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] {
        if (stop_) return true;
        for (const auto& deque : deques_) {
          if (!deque.empty()) return true;
        }
        return false;
      });
      if (stop_) return;
    }
    while (run_one(self)) {
    }
  }
}

void ThreadPool::run(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    // Single-worker pool: pure inline execution, no locking.
    for (Task& task : tasks) task(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      deques_[i % deques_.size()].push_back(std::move(tasks[i]));
    }
    unfinished_ += tasks.size();
  }
  wake_.notify_all();
  while (run_one(0)) {
  }
  std::unique_lock lock(mutex_);
  wake_.wait(lock, [this] { return unfinished_ == 0; });
}

}  // namespace healers::support
