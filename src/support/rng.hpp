// Deterministic PRNG used by the fault injector's value generators.
//
// Determinism is a design requirement (DESIGN.md): a fault-injection campaign
// with a given seed must derive the same robust API on every run so that the
// golden tests and experiment shapes are stable.
#pragma once

#include <cstdint>
#include <limits>

namespace healers {

// SplitMix64: tiny, fast, well-distributed; good enough for test-value
// generation (we are not doing statistics, just spreading probes).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  [[nodiscard]] double unit() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  [[nodiscard]] bool chance(double p) noexcept { return unit() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace healers
