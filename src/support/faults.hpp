// Fault vocabulary for the simulated machine.
//
// The paper's fault-injection driver observed real process deaths (SIGSEGV,
// SIGBUS, SIGABRT) and timeouts. Our simulated substrate raises these as C++
// exceptions at the precise access that would have trapped; the injector
// sandbox and the linker call engine are the only layers that catch them and
// turn them into CallOutcome data (the simulated analogue of the supervising
// driver process reaping a dead child).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace healers {

// Signal-like classification of a simulated fault.
enum class FaultKind : std::uint8_t {
  kSegv,        // invalid address / permission violation  (SIGSEGV)
  kBus,         // misaligned or torn access               (SIGBUS)
  kAbort,       // library detected corruption and aborted (SIGABRT)
  kHang,        // step budget exhausted (driver timeout)
  kHijack,      // simulated control flow left the program (successful exploit)
};

[[nodiscard]] std::string to_string(FaultKind kind);

// Raised by the memory model / simulated machine at the faulting access.
class AccessFault : public std::runtime_error {
 public:
  AccessFault(FaultKind kind, std::uint64_t address, std::string detail)
      : std::runtime_error(to_string(kind) + " at 0x" + to_hex(address) + ": " + detail),
        kind_(kind),
        address_(address),
        detail_(std::move(detail)) {}

  [[nodiscard]] FaultKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t address() const noexcept { return address_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  static std::string to_hex(std::uint64_t value);

  FaultKind kind_;
  std::uint64_t address_;
  std::string detail_;
};

// Raised when simulated library code calls abort() (e.g. on detected heap
// corruption) or when a wrapper terminates the process on a detected attack.
class SimAbort : public std::runtime_error {
 public:
  explicit SimAbort(std::string reason)
      : std::runtime_error("abort: " + reason), reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  std::string reason_;
};

// Raised when the simulated step budget is exhausted (hang detection).
class SimHang : public std::runtime_error {
 public:
  explicit SimHang(std::uint64_t steps)
      : std::runtime_error("hang: step budget " + std::to_string(steps) + " exhausted"),
        steps_(steps) {}

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  std::uint64_t steps_;
};

// Raised when simulated control flow is hijacked (return address or function
// pointer overwritten by an attack) — the "attacker got a shell" outcome of
// demo 3.4. A security wrapper's job is to abort before this is ever thrown.
class ControlFlowHijack : public std::runtime_error {
 public:
  explicit ControlFlowHijack(std::string detail)
      : std::runtime_error("control-flow hijack: " + detail), detail_(std::move(detail)) {}

  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  std::string detail_;
};

// Raised when simulated code calls exit(): orderly process termination, not
// a fault. The linker call engine converts it to the process exit status.
class SimExit : public std::runtime_error {
 public:
  explicit SimExit(int code)
      : std::runtime_error("exit(" + std::to_string(code) + ")"), code_(code) {}

  [[nodiscard]] int code() const noexcept { return code_; }

 private:
  int code_;
};

}  // namespace healers
