// Lightweight expected/result vocabulary type used across HEALERS module
// boundaries for anticipated failures (parse errors, lookup misses, I/O).
//
// Faults discovered *inside the simulated machine* (invalid memory accesses,
// aborts) are not Results: they propagate as healers::AccessFault /
// healers::SimAbort exceptions and are converted to data only by the
// fault-injection sandbox and the linker call engine (see DESIGN.md).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace healers {

// Error payload carried by a failed Result.
struct Error {
  std::string message;

  explicit Error(std::string msg) : message(std::move(msg)) {}
};

// Thrown when a Result is unwrapped without checking. Indicates a programmer
// error at the call site, not a recoverable condition.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const std::string& what) : std::logic_error(what) {}
};

// Minimal expected<T, Error>. C++23 std::expected is unavailable on this
// toolchain; this covers the subset HEALERS needs.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess("Result::value on error: " + error().message);
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw BadResultAccess("Result::value on error: " + error().message);
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw BadResultAccess("Result::take on error: " + error().message);
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw BadResultAccess("Result::error on value");
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;                                        // success
  Status(Error error) : error_(std::move(error)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw BadResultAccess("Status::error on success");
    return *error_;
  }

  static Status success() { return {}; }
  static Status failure(std::string msg) { return Status(Error(std::move(msg))); }

 private:
  std::optional<Error> error_;
};

}  // namespace healers
