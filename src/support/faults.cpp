#include "support/faults.hpp"

#include <array>

namespace healers {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSegv:
      return "SIGSEGV";
    case FaultKind::kBus:
      return "SIGBUS";
    case FaultKind::kAbort:
      return "SIGABRT";
    case FaultKind::kHang:
      return "HANG";
    case FaultKind::kHijack:
      return "HIJACK";
  }
  return "UNKNOWN";
}

std::string AccessFault::to_hex(std::uint64_t value) {
  static constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                                   '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
  if (value == 0) return "0";
  std::string out;
  while (value != 0) {
    out.insert(out.begin(), kDigits[value & 0xF]);
    value >>= 4;
  }
  return out;
}

}  // namespace healers
