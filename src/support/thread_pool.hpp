// Small work-stealing thread pool for the fault-injection campaign engine.
//
// A pool of W workers owns W deques. Worker 0 is the CALLING thread: a pool
// of one spawns no threads at all and run() degenerates to an inline loop,
// so sequential configurations pay nothing for the abstraction. Each task
// receives the index of the worker executing it, which callers use to bind
// per-worker state (the injector's per-worker testbed processes).
//
// Scheduling: run() deals tasks round-robin across the deques; a worker pops
// from the front of its own deque and, when empty, steals from the back of a
// sibling's. Probe tasks vary in cost by an order of magnitude (one test
// case vs. a dozen), so stealing — not static partitioning — is what keeps
// the workers busy to the end of a campaign.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace healers::support {

class ThreadPool {
 public:
  // A task, handed the index (0-based, < workers()) of its executing worker.
  using Task = std::function<void(unsigned)>;

  // `workers` >= 1, including the calling thread; spawns workers-1 threads.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return static_cast<unsigned>(deques_.size()); }

  // Runs every task to completion before returning; the calling thread
  // participates as worker 0. Not reentrant.
  void run(std::vector<Task> tasks);

  // Hardware concurrency, never 0.
  [[nodiscard]] static unsigned hardware_workers();

 private:
  // Pops own front, else steals a sibling's back. False when nothing runnable.
  bool run_one(unsigned self);
  void worker_loop(unsigned self);

  std::vector<std::deque<Task>> deques_;  // one per worker, guarded by mutex_
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::size_t unfinished_ = 0;  // tasks dealt but not yet completed
  bool stop_ = false;
};

}  // namespace healers::support
