#include "profile/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "simlib/cerrno.hpp"

namespace healers::profile {

std::uint64_t FunctionProfile::errors() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [_, count] : errno_counts) n += count;
  return n;
}

std::uint64_t ProfileReport::total_calls() const noexcept {
  std::uint64_t n = 0;
  for (const FunctionProfile& fn : functions) n += fn.calls;
  return n;
}

std::uint64_t ProfileReport::total_cycles() const noexcept {
  std::uint64_t n = 0;
  for (const FunctionProfile& fn : functions) n += fn.cycles;
  return n;
}

std::uint64_t ProfileReport::total_errors() const noexcept {
  std::uint64_t n = 0;
  for (const FunctionProfile& fn : functions) n += fn.errors();
  return n;
}

const FunctionProfile* ProfileReport::function(const std::string& symbol) const noexcept {
  for (const FunctionProfile& fn : functions) {
    if (fn.symbol == symbol) return &fn;
  }
  return nullptr;
}

ProfileReport build_report(const std::string& process, const std::string& wrapper,
                           const gen::WrapperStats& stats) {
  ProfileReport report;
  report.process = process;
  report.wrapper = wrapper;
  for (const auto& [_, fn] : stats.functions()) {
    if (fn.calls == 0 && fn.cycles == 0 && fn.errno_counts.empty() && fn.contained == 0) {
      continue;  // wrapped but never called: not part of the profile
    }
    FunctionProfile profile;
    profile.symbol = fn.symbol;
    profile.calls = fn.calls;
    profile.cycles = fn.cycles;
    profile.contained = fn.contained;
    profile.errno_counts = fn.errno_counts;
    report.functions.push_back(std::move(profile));
  }
  std::sort(report.functions.begin(), report.functions.end(),
            [](const FunctionProfile& a, const FunctionProfile& b) { return a.symbol < b.symbol; });
  report.global_errnos = stats.global_errnos();
  return report;
}

xml::Node to_xml(const ProfileReport& report) {
  xml::Node node("profile");
  node.set_attr("process", report.process);
  node.set_attr("wrapper", report.wrapper);
  node.set_attr("total_calls", std::to_string(report.total_calls()));
  node.set_attr("total_cycles", std::to_string(report.total_cycles()));
  for (const FunctionProfile& fn : report.functions) {
    xml::Node& fn_el = node.add_child("function");
    fn_el.set_attr("name", fn.symbol);
    fn_el.set_attr("calls", std::to_string(fn.calls));
    fn_el.set_attr("cycles", std::to_string(fn.cycles));
    if (fn.contained > 0) fn_el.set_attr("contained", std::to_string(fn.contained));
    for (const auto& [err, count] : fn.errno_counts) {
      xml::Node& err_el = fn_el.add_child("error");
      err_el.set_attr("errno", std::to_string(err));
      err_el.set_attr("name", simlib::errno_name(err));
      err_el.set_attr("count", std::to_string(count));
    }
  }
  if (!report.global_errnos.empty()) {
    xml::Node& global = node.add_child("errors");
    for (const auto& [err, count] : report.global_errnos) {
      xml::Node& err_el = global.add_child("error");
      err_el.set_attr("errno", std::to_string(err));
      err_el.set_attr("name", simlib::errno_name(err));
      err_el.set_attr("count", std::to_string(count));
    }
  }
  return node;
}

Result<ProfileReport> from_xml(const xml::Node& node) {
  if (node.name() != "profile") return Error("expected <profile>");
  ProfileReport report;
  if (const std::string* process = node.attr("process")) report.process = *process;
  if (const std::string* wrapper = node.attr("wrapper")) report.wrapper = *wrapper;
  for (const xml::Node* fn_el : node.children_named("function")) {
    FunctionProfile fn;
    const std::string* name = fn_el->attr("name");
    if (name == nullptr) return Error("<function> missing name");
    fn.symbol = *name;
    fn.calls = static_cast<std::uint64_t>(fn_el->attr_int("calls", 0));
    fn.cycles = static_cast<std::uint64_t>(fn_el->attr_int("cycles", 0));
    fn.contained = static_cast<std::uint64_t>(fn_el->attr_int("contained", 0));
    for (const xml::Node* err_el : fn_el->children_named("error")) {
      fn.errno_counts[static_cast<int>(err_el->attr_int("errno", 0))] +=
          static_cast<std::uint64_t>(err_el->attr_int("count", 0));
    }
    report.functions.push_back(std::move(fn));
  }
  if (const xml::Node* global = node.child("errors")) {
    for (const xml::Node* err_el : global->children_named("error")) {
      report.global_errnos[static_cast<int>(err_el->attr_int("errno", 0))] +=
          static_cast<std::uint64_t>(err_el->attr_int("count", 0));
    }
  }
  return report;
}

std::string render(const ProfileReport& report) {
  std::ostringstream out;
  const std::uint64_t total_calls = report.total_calls();
  const std::uint64_t total_cycles = report.total_cycles();
  out << "profile report: process '" << report.process << "' (" << report.wrapper << ")\n";
  out << "---------------------------------------------------------------------------\n";
  out << std::left << std::setw(12) << "function" << std::right << std::setw(9) << "calls"
      << std::setw(9) << "%calls" << std::setw(12) << "cycles" << std::setw(9) << "%time"
      << std::setw(8) << "errors" << std::setw(10) << "contained" << "  top errno\n";
  out << "---------------------------------------------------------------------------\n";
  for (const FunctionProfile& fn : report.functions) {
    const double pct_calls =
        total_calls == 0 ? 0.0 : 100.0 * static_cast<double>(fn.calls) / static_cast<double>(total_calls);
    const double pct_time =
        total_cycles == 0 ? 0.0
                          : 100.0 * static_cast<double>(fn.cycles) / static_cast<double>(total_cycles);
    std::string top_errno = "-";
    std::uint64_t top_count = 0;
    for (const auto& [err, count] : fn.errno_counts) {
      if (count > top_count) {
        top_count = count;
        top_errno = simlib::errno_name(err);
      }
    }
    out << std::left << std::setw(12) << fn.symbol << std::right << std::setw(9) << fn.calls
        << std::setw(8) << std::fixed << std::setprecision(1) << pct_calls << "%" << std::setw(12)
        << fn.cycles << std::setw(8) << pct_time << "%" << std::setw(8) << fn.errors()
        << std::setw(10) << fn.contained << "  " << top_errno << "\n";
  }
  out << "---------------------------------------------------------------------------\n";
  out << "errno distribution (causes of errors):\n";
  if (report.global_errnos.empty()) {
    out << "  (no errors recorded)\n";
  } else {
    for (const auto& [err, count] : report.global_errnos) {
      out << "  " << std::left << std::setw(8) << simlib::errno_name(err) << std::right
          << std::setw(8) << count << "  (" << simlib::errno_describe(err) << ")\n";
    }
  }
  return out.str();
}

std::string render_chart(const ProfileReport& report, ChartMetric metric, int width) {
  const auto value_of = [metric](const FunctionProfile& fn) -> std::uint64_t {
    switch (metric) {
      case ChartMetric::kCalls: return fn.calls;
      case ChartMetric::kCycles: return fn.cycles;
      case ChartMetric::kErrors: return fn.errors();
    }
    return 0;
  };
  const char* title = metric == ChartMetric::kCalls
                          ? "calls"
                          : (metric == ChartMetric::kCycles ? "cycles" : "errors");

  std::uint64_t max_value = 0;
  for (const FunctionProfile& fn : report.functions) {
    max_value = std::max(max_value, value_of(fn));
  }

  std::ostringstream out;
  out << title << " per function ('" << report.process << "')\n";
  if (max_value == 0) {
    out << "  (nothing to chart)\n";
    return out.str();
  }
  for (const FunctionProfile& fn : report.functions) {
    const std::uint64_t value = value_of(fn);
    if (value == 0) continue;
    const int bar = std::max<int>(
        1, static_cast<int>(static_cast<double>(value) / static_cast<double>(max_value) *
                            width));
    out << "  " << std::left << std::setw(10) << fn.symbol << " "
        << std::string(static_cast<std::size_t>(bar), '#') << " " << value << "\n";
  }
  return out.str();
}

}  // namespace healers::profile
