#include "profile/collector.hpp"

#include <sstream>

#include "simlib/cerrno.hpp"

namespace healers::profile {

Status CollectorServer::ingest(const std::string& xml_document) {
  auto parsed = xml::parse(xml_document);
  if (!parsed.ok()) {
    return Status::failure("collector: malformed document: " + parsed.error().message);
  }
  auto report = from_xml(parsed.value());
  if (!report.ok()) {
    return Status::failure("collector: not a profile document: " + report.error().message);
  }
  reports_.push_back(std::move(report).take());
  // Fold into the incremental totals only after every failure path is past:
  // a rejected document must leave the server untouched.
  for (const FunctionProfile& fn : reports_.back().functions) {
    FunctionProfile& agg = totals_[fn.symbol];
    agg.symbol = fn.symbol;
    agg.calls += fn.calls;
    agg.cycles += fn.cycles;
    agg.contained += fn.contained;
    for (const auto& [err, count] : fn.errno_counts) agg.errno_counts[err] += count;
  }
  return Status::success();
}

std::vector<const ProfileReport*> CollectorServer::reports_for(const std::string& process) const {
  std::vector<const ProfileReport*> out;
  for (const ProfileReport& report : reports_) {
    if (report.process == process) out.push_back(&report);
  }
  return out;
}

std::map<std::string, FunctionProfile> CollectorServer::aggregate_rescan() const {
  std::map<std::string, FunctionProfile> out;
  for (const ProfileReport& report : reports_) {
    for (const FunctionProfile& fn : report.functions) {
      FunctionProfile& agg = out[fn.symbol];
      agg.symbol = fn.symbol;
      agg.calls += fn.calls;
      agg.cycles += fn.cycles;
      agg.contained += fn.contained;
      for (const auto& [err, count] : fn.errno_counts) agg.errno_counts[err] += count;
    }
  }
  return out;
}

std::string CollectorServer::render_summary() const {
  std::ostringstream out;
  out << "collector: " << reports_.size() << " document(s)\n";
  const auto& agg = aggregate();
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  for (const auto& [_, fn] : agg) {
    calls += fn.calls;
    errors += fn.errors();
  }
  out << "aggregate: " << agg.size() << " distinct functions, " << calls << " calls, " << errors
      << " errors\n";
  for (const auto& [symbol, fn] : agg) {
    out << "  " << symbol << ": " << fn.calls << " calls";
    if (fn.errors() > 0) out << ", " << fn.errors() << " errors";
    if (fn.contained > 0) out << ", " << fn.contained << " contained";
    out << "\n";
  }
  return out.str();
}

}  // namespace healers::profile
