// The central collector server (paper §2.3): wrappers running in many
// processes across a distributed environment ship self-describing XML
// documents; the server "can extract from the document which functions were
// wrapped and what kind of information was collected", stores them, and
// aggregates across processes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "profile/report.hpp"
#include "support/result.hpp"

namespace healers::profile {

class CollectorServer {
 public:
  // Parses and stores one document (the wire format is the XML text).
  Status ingest(const std::string& xml_document);

  [[nodiscard]] std::size_t document_count() const noexcept { return reports_.size(); }
  [[nodiscard]] const std::vector<ProfileReport>& reports() const noexcept { return reports_; }

  // Reports from one process name (a process may submit several runs).
  [[nodiscard]] std::vector<const ProfileReport*> reports_for(const std::string& process) const;

  // Cross-process aggregation: per-function totals over every stored
  // document — the server-side view of "what does the whole fleet call and
  // where do its errors come from". Totals are maintained incrementally by
  // ingest(), so this is O(functions), independent of document count.
  [[nodiscard]] const std::map<std::string, FunctionProfile>& aggregate() const noexcept {
    return totals_;
  }

  // Recomputes the same totals by rescanning every stored document — the
  // O(documents) verification path for the incremental totals (tested to
  // agree with aggregate()).
  [[nodiscard]] std::map<std::string, FunctionProfile> aggregate_rescan() const;

  // Fleet-wide summary rendering.
  [[nodiscard]] std::string render_summary() const;

 private:
  std::vector<ProfileReport> reports_;
  std::map<std::string, FunctionProfile> totals_;  // updated per ingest()
};

}  // namespace healers::profile
