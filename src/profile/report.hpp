// Profiling reports (paper §2.3, §3.3, Fig 5).
//
// "Just before the application terminates, the collection code is called to
// send the gathered information to a central server ... in form of a
// self-describing XML document."
//
// This module turns a wrapper's WrapperStats into that XML document, parses
// such documents back into ProfileReports, and renders the Fig 5 view:
// frequency of function calls, percentage of execution time per function,
// distribution of function errors and their causes (classified by errno).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gen/stats.hpp"
#include "support/result.hpp"
#include "xml/xml.hpp"

namespace healers::profile {

struct FunctionProfile {
  std::string symbol;
  std::uint64_t calls = 0;
  std::uint64_t cycles = 0;
  std::uint64_t contained = 0;
  std::map<int, std::uint64_t> errno_counts;

  [[nodiscard]] std::uint64_t errors() const noexcept;
};

struct ProfileReport {
  std::string process;
  std::string wrapper;
  std::vector<FunctionProfile> functions;        // sorted by symbol
  std::map<int, std::uint64_t> global_errnos;

  [[nodiscard]] std::uint64_t total_calls() const noexcept;
  [[nodiscard]] std::uint64_t total_cycles() const noexcept;
  [[nodiscard]] std::uint64_t total_errors() const noexcept;
  [[nodiscard]] const FunctionProfile* function(const std::string& symbol) const noexcept;
};

// WrapperStats -> report (the wrapper-side view at process termination).
[[nodiscard]] ProfileReport build_report(const std::string& process, const std::string& wrapper,
                                         const gen::WrapperStats& stats);

// Report <-> self-describing XML document.
[[nodiscard]] xml::Node to_xml(const ProfileReport& report);
[[nodiscard]] Result<ProfileReport> from_xml(const xml::Node& node);

// The Fig 5 rendering: call frequencies, execution-time percentages, error
// distributions and errno classification, as an ASCII table.
[[nodiscard]] std::string render(const ProfileReport& report);

// The "automatically generate graphics" half of demo §3.3: an ASCII bar
// chart of the given metric across functions (the toolkit's web UI drew the
// same data as images).
enum class ChartMetric : std::uint8_t { kCalls, kCycles, kErrors };
[[nodiscard]] std::string render_chart(const ProfileReport& report, ChartMetric metric,
                                       int width = 40);

}  // namespace healers::profile
