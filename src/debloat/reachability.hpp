// Demand-driven surface debloating: reachability analysis (docs/debloat.md).
//
// HEALERS wraps every exported symbol of a library, but a given executable
// reaches only a fraction of that surface (Binary Debloating for Security
// via Demand Driven Loading, arXiv:1902.06570). This module computes that
// fraction: the transitive closure of the executable's undefined-symbol
// list over the per-library intra-call edges declared by the man pages'
// CALLS annotations. The closure is the executable's *surface profile* —
// what demand loading is allowed to map, what campaign derivation needs to
// probe, and what the fleet aggregates per host.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linker/executable.hpp"

namespace healers::debloat {

// The static closure for one executable against a catalog.
struct ReachabilityReport {
  std::string executable;
  std::uint64_t exported = 0;           // exports of the needed libraries
  std::vector<std::string> reachable;   // sorted transitive closure
  std::vector<std::string> unresolved;  // roots with no provider, sorted
  // Resolved call edges the closure walked, sorted (caller, callee) — the
  // report's explanation of *why* a symbol is reachable.
  std::vector<std::pair<std::string, std::string>> edges;

  // Share of the exported surface the closure never reaches — the symbols
  // demand loading leaves unmapped even if the workload touches everything
  // it legally can. 0 when nothing is exported.
  [[nodiscard]] double unmapped_ratio() const noexcept;

  [[nodiscard]] std::string to_text() const;
};

// Static closure: seeds from `exe.undefined` resolved against the needed
// libraries (in DT_NEEDED order, like the loader), then follows each
// reached symbol's CALLS annotations until fixpoint. Unparseable man pages
// contribute no edges (the symbol itself stays reachable).
[[nodiscard]] ReachabilityReport compute_reachability(const linker::Executable& exe,
                                                      const linker::LibraryCatalog& catalog);

// Dynamic refinement: unions symbols observed by a validate_executable-style
// trace into the closure (a stale import list under-approximates the static
// roots; the trace restores what the binary actually calls).
void refine_with_trace(ReachabilityReport& report, const std::vector<std::string>& trace);

// Creates a ready-to-run process for the executable with demand loading
// enabled against `profile.reachable` — the debloated twin of
// linker::spawn. Throws std::runtime_error when a needed library is missing
// from the catalog.
[[nodiscard]] std::unique_ptr<linker::Process> spawn_debloated(
    const linker::Executable& exe, const linker::LibraryCatalog& catalog,
    const ReachabilityReport& profile, std::vector<linker::InterpositionPtr> preloads = {},
    mem::MachineConfig config = {});

}  // namespace healers::debloat
