// Per-host surface profiles (docs/debloat.md).
//
// A SurfaceProfile is the telemetry document demand loading produces: for
// one executable on one host, which symbols the static closure admits, which
// the workload actually faulted in, which out-of-profile calls trapped, and
// how many text pages stayed unmapped. Hosts ship these through the same
// fleet pipe as profiling documents and crash dossiers (XML here, "HSP1"
// binary in fleet/wire.hpp), and FleetCollector aggregates them
// commutatively into the fleet-wide surface drift summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "debloat/reachability.hpp"
#include "linker/process.hpp"
#include "support/result.hpp"

namespace healers::xml {
class Node;
}

namespace healers::debloat {

struct SurfaceProfile {
  std::string host;        // producing host ("local" for CLI runs)
  std::string executable;  // e.g. "netd"

  std::uint64_t exported = 0;        // symbols the load set exports
  std::uint64_t reachable = 0;       // static closure size
  std::uint64_t touched = 0;         // symbols faulted in at runtime
  std::uint64_t trapped = 0;         // out-of-profile call attempts
  std::uint64_t resident_pages = 0;  // text pages faulted in
  std::uint64_t total_pages = 0;     // pages eager binding would map

  std::vector<std::string> reachable_symbols;  // sorted
  std::vector<std::string> touched_symbols;    // sorted
  std::vector<std::string> trapped_symbols;    // sorted

  // Share of the exported surface never mapped at runtime (1 - touched /
  // exported); 0 when nothing is exported.
  [[nodiscard]] double unmapped_ratio() const noexcept;
  // Share of the exported surface outside the static closure — pure bloat
  // a debloated build would drop entirely.
  [[nodiscard]] double bloat_ratio() const noexcept;
  // Share of would-be text pages actually resident.
  [[nodiscard]] double resident_ratio() const noexcept;

  [[nodiscard]] bool operator==(const SurfaceProfile& other) const = default;

  // Deterministic XML document (<surface-profile ...>); identical profiles
  // serialize byte-identically.
  [[nodiscard]] std::string to_xml() const;
  [[nodiscard]] std::string to_text() const;
};

// Strict XML decoder for <surface-profile> documents. The Node overload
// serves callers that already parsed the payload (the fleet collector's
// sniff-by-root-element dispatch).
[[nodiscard]] Result<SurfaceProfile> surface_from_xml(std::string_view document);
[[nodiscard]] Result<SurfaceProfile> surface_from_xml(const xml::Node& root);

// Snapshots the live demand-loading state of a process into a profile.
// `proc` must have demand loading enabled; resident pages are counted over
// the "text:" regions the load barrier mapped.
[[nodiscard]] SurfaceProfile capture_surface_profile(const linker::Process& proc,
                                                     const ReachabilityReport& reach,
                                                     std::string host);

}  // namespace healers::debloat
