#include "debloat/surface.hpp"

#include <sstream>

#include "xml/xml.hpp"

namespace healers::debloat {

namespace {

Result<std::uint64_t> parse_u64(const xml::Node& node, std::string_view attr) {
  const std::string* raw = node.attr(attr);
  if (raw == nullptr) return Error("surface-profile: missing attribute " + std::string(attr));
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(*raw, &used, 10);
    if (used != raw->size()) return Error("surface-profile: malformed " + std::string(attr));
    return value;
  } catch (const std::exception&) {
    return Error("surface-profile: malformed " + std::string(attr));
  }
}

void add_symbol_list(xml::Node& root, const std::string& name,
                     const std::vector<std::string>& symbols) {
  xml::Node& list = root.add_child(name);
  for (const std::string& symbol : symbols) {
    list.add_child("symbol").set_attr("name", symbol);
  }
}

Result<std::vector<std::string>> read_symbol_list(const xml::Node& root,
                                                  std::string_view name) {
  const xml::Node* list = root.child(name);
  if (list == nullptr) return Error("surface-profile: missing <" + std::string(name) + ">");
  std::vector<std::string> out;
  for (const xml::Node* row : list->children_named("symbol")) {
    const std::string* symbol = row->attr("name");
    if (symbol == nullptr) return Error("surface-profile: <symbol> without name");
    out.push_back(*symbol);
  }
  return out;
}

int percent(double ratio) { return static_cast<int>(ratio * 100.0 + 0.5); }

}  // namespace

double SurfaceProfile::unmapped_ratio() const noexcept {
  if (exported == 0) return 0.0;
  const std::uint64_t mapped = touched < exported ? touched : exported;
  return static_cast<double>(exported - mapped) / static_cast<double>(exported);
}

double SurfaceProfile::bloat_ratio() const noexcept {
  if (exported == 0) return 0.0;
  const std::uint64_t reached = reachable < exported ? reachable : exported;
  return static_cast<double>(exported - reached) / static_cast<double>(exported);
}

double SurfaceProfile::resident_ratio() const noexcept {
  if (total_pages == 0) return 0.0;
  return static_cast<double>(resident_pages) / static_cast<double>(total_pages);
}

std::string SurfaceProfile::to_xml() const {
  xml::Node root("surface-profile");
  root.set_attr("host", host);
  root.set_attr("executable", executable);
  root.set_attr("exported", std::to_string(exported));
  root.set_attr("reachable", std::to_string(reachable));
  root.set_attr("touched", std::to_string(touched));
  root.set_attr("trapped", std::to_string(trapped));
  root.set_attr("resident_pages", std::to_string(resident_pages));
  root.set_attr("total_pages", std::to_string(total_pages));
  add_symbol_list(root, "reachable", reachable_symbols);
  add_symbol_list(root, "touched", touched_symbols);
  add_symbol_list(root, "trapped", trapped_symbols);
  return xml::serialize(root);
}

std::string SurfaceProfile::to_text() const {
  std::ostringstream out;
  out << "surface profile: " << executable << " on " << host << "\n";
  out << "  exported " << exported << ", reachable " << reachable << ", touched " << touched
      << ", trapped " << trapped << "\n";
  out << "  unmapped: " << percent(unmapped_ratio()) << "%  bloat (outside closure): "
      << percent(bloat_ratio()) << "%\n";
  out << "  text pages resident: " << resident_pages << "/" << total_pages << " ("
      << percent(resident_ratio()) << "%)\n";
  out << "  touched:";
  for (const std::string& symbol : touched_symbols) out << ' ' << symbol;
  out << "\n";
  if (!trapped_symbols.empty()) {
    out << "  TRAPPED (surface violations):";
    for (const std::string& symbol : trapped_symbols) out << ' ' << symbol;
    out << "\n";
  }
  return out.str();
}

Result<SurfaceProfile> surface_from_xml(std::string_view document) {
  auto parsed = xml::parse(document);
  if (!parsed.ok()) return parsed.error();
  return surface_from_xml(parsed.value());
}

Result<SurfaceProfile> surface_from_xml(const xml::Node& root) {
  if (root.name() != "surface-profile") {
    return Error("surface-profile: root element is not <surface-profile>");
  }
  SurfaceProfile out;
  if (const std::string* host = root.attr("host")) out.host = *host;
  if (const std::string* exe = root.attr("executable")) out.executable = *exe;
  for (const auto& [field, target] :
       std::initializer_list<std::pair<const char*, std::uint64_t*>>{
           {"exported", &out.exported},
           {"reachable", &out.reachable},
           {"touched", &out.touched},
           {"trapped", &out.trapped},
           {"resident_pages", &out.resident_pages},
           {"total_pages", &out.total_pages}}) {
    auto value = parse_u64(root, field);
    if (!value.ok()) return value.error();
    *target = value.value();
  }
  for (const auto& [name, target] :
       std::initializer_list<std::pair<const char*, std::vector<std::string>*>>{
           {"reachable", &out.reachable_symbols},
           {"touched", &out.touched_symbols},
           {"trapped", &out.trapped_symbols}}) {
    auto list = read_symbol_list(root, name);
    if (!list.ok()) return list.error();
    *target = std::move(list).take();
  }
  return out;
}

SurfaceProfile capture_surface_profile(const linker::Process& proc,
                                       const ReachabilityReport& reach, std::string host) {
  SurfaceProfile profile;
  profile.host = std::move(host);
  profile.executable = proc.name();
  profile.exported = proc.surface().exported;
  profile.reachable = reach.reachable.size();
  profile.touched = proc.surface().mapped;
  profile.trapped = proc.surface().violations;
  profile.reachable_symbols = reach.reachable;
  profile.touched_symbols.assign(proc.touched_symbols().begin(), proc.touched_symbols().end());
  profile.trapped_symbols.assign(proc.trapped_symbols().begin(), proc.trapped_symbols().end());
  // One text page per export is what eager binding would map; the load
  // barrier mapped exactly one resident page per touched symbol.
  profile.total_pages = profile.exported;
  for (const mem::Region* region : proc.machine().mem().region_map()) {
    if (region->label.rfind("text:", 0) == 0) profile.resident_pages += region->resident_pages();
  }
  return profile;
}

}  // namespace healers::debloat
