#include "debloat/reachability.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

#include "parser/manpage.hpp"

namespace healers::debloat {

namespace {

// Resolves `symbol` against the executable's needed libraries in DT_NEEDED
// order, exactly like the loader's search. nullptr when nothing defines it.
const simlib::Symbol* resolve_in_needed(const std::string& symbol,
                                        const std::vector<std::string>& needed,
                                        const linker::LibraryCatalog& catalog) {
  for (const std::string& soname : needed) {
    const simlib::SharedLibrary* lib = catalog.find(soname);
    if (lib == nullptr) continue;
    if (const simlib::Symbol* found = lib->find(symbol)) return found;
  }
  return nullptr;
}

}  // namespace

double ReachabilityReport::unmapped_ratio() const noexcept {
  if (exported == 0) return 0.0;
  const std::uint64_t reached = std::min<std::uint64_t>(reachable.size(), exported);
  return static_cast<double>(exported - reached) / static_cast<double>(exported);
}

std::string ReachabilityReport::to_text() const {
  std::ostringstream out;
  out << "surface reachability for " << executable << "\n";
  out << "  exported symbols: " << exported << "\n";
  out << "  reachable (static closure): " << reachable.size() << "\n";
  out << "  unmapped under demand loading: " << (exported - std::min<std::uint64_t>(
                                                    reachable.size(), exported))
      << " (" << static_cast<int>(unmapped_ratio() * 100.0 + 0.5) << "%)\n";
  out << "  reachable symbols:";
  for (const std::string& symbol : reachable) out << ' ' << symbol;
  out << "\n";
  if (!unresolved.empty()) {
    out << "  UNRESOLVED roots:";
    for (const std::string& symbol : unresolved) out << ' ' << symbol;
    out << "\n";
  }
  if (!edges.empty()) {
    out << "  call edges walked:\n";
    for (const auto& [caller, callee] : edges) {
      out << "    " << caller << " -> " << callee << "\n";
    }
  }
  return out.str();
}

ReachabilityReport compute_reachability(const linker::Executable& exe,
                                        const linker::LibraryCatalog& catalog) {
  ReachabilityReport report;
  report.executable = exe.name;
  for (const std::string& soname : exe.needed) {
    if (const simlib::SharedLibrary* lib = catalog.find(soname)) {
      report.exported += lib->names().size();
    }
  }

  std::set<std::string> reachable;
  std::set<std::pair<std::string, std::string>> edges;
  std::deque<std::string> worklist;
  for (const std::string& root : exe.undefined) {
    if (resolve_in_needed(root, exe.needed, catalog) == nullptr) {
      report.unresolved.push_back(root);
      continue;
    }
    if (reachable.insert(root).second) worklist.push_back(root);
  }
  std::sort(report.unresolved.begin(), report.unresolved.end());

  while (!worklist.empty()) {
    const std::string caller = std::move(worklist.front());
    worklist.pop_front();
    const simlib::Symbol* symbol = resolve_in_needed(caller, exe.needed, catalog);
    if (symbol == nullptr) continue;
    auto page = parser::parse_manpage(symbol->manpage);
    if (!page.ok()) continue;  // no edges from an unparseable page
    for (const std::string& callee : page.value().calls) {
      if (resolve_in_needed(callee, exe.needed, catalog) == nullptr) continue;
      edges.emplace(caller, callee);
      if (reachable.insert(callee).second) worklist.push_back(callee);
    }
  }

  report.reachable.assign(reachable.begin(), reachable.end());
  report.edges.assign(edges.begin(), edges.end());
  return report;
}

void refine_with_trace(ReachabilityReport& report, const std::vector<std::string>& trace) {
  std::set<std::string> reachable(report.reachable.begin(), report.reachable.end());
  for (const std::string& symbol : trace) reachable.insert(symbol);
  report.reachable.assign(reachable.begin(), reachable.end());
}

std::unique_ptr<linker::Process> spawn_debloated(const linker::Executable& exe,
                                                 const linker::LibraryCatalog& catalog,
                                                 const ReachabilityReport& profile,
                                                 std::vector<linker::InterpositionPtr> preloads,
                                                 mem::MachineConfig config) {
  auto process = std::make_unique<linker::Process>(exe.name, config);
  process->enable_demand_loading(profile.reachable);
  for (const std::string& soname : exe.needed) {
    const simlib::SharedLibrary* lib = catalog.find(soname);
    if (lib == nullptr) {
      throw std::runtime_error("spawn: missing library " + soname + " for " + exe.name);
    }
    process->load_library(lib);
  }
  for (linker::InterpositionPtr& wrapper : preloads) {
    process->preload(std::move(wrapper));
  }
  return process;
}

}  // namespace healers::debloat
