#include "server/protocol.hpp"

#include "fleet/wire.hpp"

namespace healers::server {
namespace {

using fleet::codec::Cursor;
using fleet::codec::put_str;
using fleet::codec::put_u32;
using fleet::codec::put_u64;

bool is_request_binary(std::string_view payload) noexcept {
  return payload.substr(0, kRequestMagic.size()) == kRequestMagic;
}

bool is_response_binary(std::string_view payload) noexcept {
  return payload.substr(0, kResponseMagic.size()) == kResponseMagic;
}

}  // namespace

std::string_view to_string(Endpoint endpoint) noexcept {
  return endpoint == Endpoint::kDerive ? "derive" : "bundle";
}

std::string_view to_string(BundleKind kind) noexcept {
  switch (kind) {
    case BundleKind::kRobustness: return "robustness";
    case BundleKind::kSecurity: return "security";
    case BundleKind::kProfiling: return "profiling";
    case BundleKind::kRepair: return "repair";
  }
  return "?";
}

std::string_view to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kShed: return "shed";
  }
  return "?";
}

injector::InjectorConfig DeriveRequest::injector_config() const {
  injector::InjectorConfig config;
  config.seed = seed;
  config.variants = variants;
  config.probe_step_budget = probe_step_budget;
  config.testbed_heap = testbed_heap;
  config.testbed_stack = testbed_stack;
  return config;
}

std::string DeriveRequest::canonical_key() const {
  // The binary encoding already is a canonical, unambiguous image of every
  // result-affecting field, so it doubles as the single-flight key.
  std::string key;
  put_u32(key, static_cast<std::uint32_t>(endpoint));
  put_str(key, soname);
  put_u64(key, seed);
  put_u32(key, static_cast<std::uint32_t>(variants));
  put_u64(key, probe_step_budget);
  put_u64(key, testbed_heap);
  put_u64(key, testbed_stack);
  put_u32(key, endpoint == Endpoint::kBundle ? static_cast<std::uint32_t>(bundle) : 0U);
  put_u32(key, static_cast<std::uint32_t>(format));
  return key;
}

xml::Node DeriveRequest::to_xml() const {
  xml::Node node("derive-request");
  node.set_attr("endpoint", std::string(to_string(endpoint)));
  node.set_attr("soname", soname);
  node.set_attr("seed", std::to_string(seed));
  node.set_attr("variants", std::to_string(variants));
  node.set_attr("budget", std::to_string(probe_step_budget));
  node.set_attr("heap", std::to_string(testbed_heap));
  node.set_attr("stack", std::to_string(testbed_stack));
  if (endpoint == Endpoint::kBundle) node.set_attr("bundle", std::string(to_string(bundle)));
  node.set_attr("format", format == WireFormat::kBinary ? "binary" : "xml");
  return node;
}

Result<DeriveRequest> DeriveRequest::from_xml(const xml::Node& node) {
  if (node.name() != "derive-request") return Error("expected <derive-request>");
  DeriveRequest request;
  const std::string* endpoint = node.attr("endpoint");
  if (endpoint == nullptr || *endpoint == "derive") {
    request.endpoint = Endpoint::kDerive;
  } else if (*endpoint == "bundle") {
    request.endpoint = Endpoint::kBundle;
  } else {
    return Error("<derive-request> unknown endpoint " + *endpoint);
  }
  const std::string* soname = node.attr("soname");
  if (soname == nullptr || soname->empty()) return Error("<derive-request> missing soname");
  request.soname = *soname;
  request.seed = static_cast<std::uint64_t>(node.attr_int("seed", 42));
  request.variants = static_cast<int>(node.attr_int("variants", 2));
  request.probe_step_budget = static_cast<std::uint64_t>(node.attr_int("budget", 2'000'000));
  request.testbed_heap = static_cast<std::uint64_t>(node.attr_int("heap", 256 << 10));
  request.testbed_stack = static_cast<std::uint64_t>(node.attr_int("stack", 64 << 10));
  if (const std::string* bundle = node.attr("bundle")) {
    if (*bundle == "robustness") {
      request.bundle = BundleKind::kRobustness;
    } else if (*bundle == "security") {
      request.bundle = BundleKind::kSecurity;
    } else if (*bundle == "profiling") {
      request.bundle = BundleKind::kProfiling;
    } else if (*bundle == "repair") {
      request.bundle = BundleKind::kRepair;
    } else {
      return Error("<derive-request> unknown bundle " + *bundle);
    }
  }
  if (const std::string* format = node.attr("format")) {
    if (*format == "xml") {
      request.format = WireFormat::kXml;
    } else if (*format == "binary") {
      request.format = WireFormat::kBinary;
    } else {
      return Error("<derive-request> unknown format " + *format);
    }
  }
  return request;
}

std::string DeriveRequest::encode() const {
  if (format == WireFormat::kXml) return xml::serialize(to_xml());
  std::string out;
  out.append(kRequestMagic);
  out.append(canonical_key());
  return out;
}

Result<DeriveRequest> DeriveRequest::decode(std::string_view payload) {
  if (!is_request_binary(payload)) {
    auto parsed = xml::parse(payload);
    if (!parsed.ok()) return Error("xml request: " + parsed.error().message);
    return from_xml(parsed.value());
  }
  Cursor cur(payload.substr(kRequestMagic.size()));
  DeriveRequest request;
  const std::uint32_t endpoint = cur.u32();
  if (!cur.ok() || endpoint > static_cast<std::uint32_t>(Endpoint::kBundle)) {
    return Error("binary request: bad endpoint");
  }
  request.endpoint = static_cast<Endpoint>(endpoint);
  request.soname = cur.str();
  request.seed = cur.u64();
  request.variants = static_cast<int>(cur.u32());
  request.probe_step_budget = cur.u64();
  request.testbed_heap = cur.u64();
  request.testbed_stack = cur.u64();
  const std::uint32_t bundle = cur.u32();
  if (!cur.ok() || bundle > static_cast<std::uint32_t>(BundleKind::kRepair)) {
    return Error("binary request: bad bundle kind");
  }
  request.bundle = static_cast<BundleKind>(bundle);
  const std::uint32_t format = cur.u32();
  if (!cur.ok() || format > static_cast<std::uint32_t>(WireFormat::kBinary)) {
    return Error("binary request: bad format");
  }
  request.format = static_cast<WireFormat>(format);
  if (!cur.at_end()) return Error("binary request: trailing bytes");
  if (request.soname.empty()) return Error("binary request: missing soname");
  return request;
}

xml::Node DeriveResponse::to_xml() const {
  xml::Node node("derive-response");
  node.set_attr("status", std::string(to_string(status)));
  node.set_attr("probes", std::to_string(probes));
  if (!error.empty()) node.add_text_child("error", error);
  // NOTE: the XML parser trims character data, so an XML envelope normalizes
  // leading/trailing payload whitespace on decode. The binary envelope is
  // byte-exact; binary campaign payloads always travel in binary envelopes.
  if (!payload.empty()) node.add_text_child("payload", payload);
  return node;
}

Result<DeriveResponse> DeriveResponse::from_xml(const xml::Node& node) {
  if (node.name() != "derive-response") return Error("expected <derive-response>");
  DeriveResponse response;
  const std::string* status = node.attr("status");
  if (status == nullptr || *status == "ok") {
    response.status = ResponseStatus::kOk;
  } else if (*status == "error") {
    response.status = ResponseStatus::kError;
  } else if (*status == "shed") {
    response.status = ResponseStatus::kShed;
  } else {
    return Error("<derive-response> unknown status " + *status);
  }
  response.probes = static_cast<std::uint64_t>(node.attr_int("probes", 0));
  if (const xml::Node* error = node.child("error")) response.error = error->text();
  if (const xml::Node* payload = node.child("payload")) response.payload = payload->text();
  return response;
}

std::string DeriveResponse::encode(WireFormat format) const {
  if (format == WireFormat::kXml) return xml::serialize(to_xml());
  std::string out;
  out.append(kResponseMagic);
  put_u32(out, static_cast<std::uint32_t>(status));
  put_u64(out, probes);
  put_str(out, error);
  put_str(out, payload);
  return out;
}

Result<DeriveResponse> DeriveResponse::decode(std::string_view payload) {
  if (!is_response_binary(payload)) {
    auto parsed = xml::parse(payload);
    if (!parsed.ok()) return Error("xml response: " + parsed.error().message);
    return from_xml(parsed.value());
  }
  Cursor cur(payload.substr(kResponseMagic.size()));
  DeriveResponse response;
  const std::uint32_t status = cur.u32();
  if (!cur.ok() || status > static_cast<std::uint32_t>(ResponseStatus::kShed)) {
    return Error("binary response: bad status");
  }
  response.status = static_cast<ResponseStatus>(status);
  response.probes = cur.u64();
  response.error = cur.str();
  response.payload = cur.str();
  if (!cur.ok()) return Error("binary response: truncated");
  if (!cur.at_end()) return Error("binary response: trailing bytes");
  return response;
}

}  // namespace healers::server
