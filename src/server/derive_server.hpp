// Hardening-as-a-service: the in-process derivation server (ISSUE 5).
//
// HEALERS derives a library's robust API once and reuses it to harden every
// application on the host; at fleet scale that derivation step is a shared
// service in front of the (already parallel, already memoized) campaign
// engine. DeriveServer is that service:
//
//   clients --submit()--> sharded bounded MPSC request queues  (admission
//                         control: overflow is SHED with a counted kShed
//                         response, never silently lost or blocking)
//   drain():  decode + group by canonical request key (single-flight: N
//             queued requests for one key trigger exactly ONE computation),
//             fan the unique keys out over a support::ThreadPool, answer
//             every ticket — repeat keys from the in-drain flight, repeated
//             drains from the response cache, and campaigns themselves from
//             the Toolkit's memo table (zero probes when warm, observable
//             via Toolkit::probes_executed()).
//
// Invariants (the FleetCollector discipline, applied to request serving):
//   * No silent loss. Every submitted request is exactly one of: answered
//     ok, answered error, answered shed, or still queued —
//     submitted() == answered() + shed() + pending().
//   * Deterministic serving. For a fixed submission trace (order + drain
//     points), response bytes per ticket AND the rendered summary are
//     byte-identical for any worker count. Response bytes are a pure
//     function of the request and library content, so they also survive
//     server restarts (and, via the spec cache file, process restarts).
//
// Metrics ride the same deterministic quantile sketch the fleet collector
// uses: queue depth at admission and response sizes per endpoint are part
// of the deterministic summary; wall-clock service latency is tracked in a
// separate sketch exposed per endpoint but kept OUT of render_summary(),
// because wall time is the one thing here that scheduling may change.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "fleet/sketch.hpp"
#include "server/protocol.hpp"

namespace healers::server {

// What submit() does when the target queue is full. Both policies count the
// victim in shed() and answer its ticket with a kShed response.
enum class AdmissionPolicy : std::uint8_t {
  kShedNewest,  // reject the incoming request
  kShedOldest,  // evict the oldest queued request, admit the incoming one
};

struct ServerConfig {
  unsigned shards = 2;               // request queues (round-robin by ticket)
  std::size_t queue_capacity = 256;  // per queue shard
  unsigned workers = 1;              // drain workers, 0 = all cores
  AdmissionPolicy policy = AdmissionPolicy::kShedNewest;
  // Scope campaigns to the toolkit's installed surface scopes (--debloat):
  // a derive for a library only probes the symbols some executable's static
  // closure can reach. Libraries with no installed scope derive unscoped.
  bool debloat = false;
};

// A merged, immutable view of the server's counters at one instant. All
// fields are trace-determined — worker count never changes any of them.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;     // tickets holding a response (ok or error)
  std::uint64_t answered_ok = 0;
  std::uint64_t answered_error = 0;  // malformed request / unknown library /...
  std::uint64_t shed = 0;         // rejected by admission control
  std::uint64_t pending = 0;      // queued, drain not yet run
  std::uint64_t deduped = 0;      // merged into an in-drain single flight
  std::uint64_t cache_hits = 0;   // served from the response cache
  std::uint64_t queue_depth_p50 = 0;  // depth seen at admission
  std::uint64_t queue_depth_p95 = 0;
  std::uint64_t queue_depth_p99 = 0;
  // Response payload bytes per endpoint (p50/p95/p99).
  std::uint64_t derive_bytes_p50 = 0, derive_bytes_p95 = 0, derive_bytes_p99 = 0;
  std::uint64_t bundle_bytes_p50 = 0, bundle_bytes_p95 = 0, bundle_bytes_p99 = 0;

  // Deterministic rendering — the byte-identical-across-worker-counts
  // surface tests compare.
  [[nodiscard]] std::string render() const;
};

class DeriveServer {
 public:
  using Ticket = std::uint64_t;

  // The toolkit supplies the libraries, the campaign engine, and the derive
  // memo table; keep it alive while the server runs. Several servers may
  // share one toolkit (they then share its spec cache).
  explicit DeriveServer(const core::Toolkit& toolkit, ServerConfig config = {});

  // Enqueues one encoded request (XML or binary; decoded at drain).
  // Thread-safe. The ticket identifies the eventual response; a shed
  // request's ticket is answered immediately with a kShed response.
  Ticket submit(std::string request_bytes);

  // Serves everything queued: one computation per unique request key on a
  // pool of config.workers workers. Not thread-safe against itself;
  // submit() during a drain is safe (late arrivals wait for the next one).
  void drain();

  // The encoded response for a ticket; nullptr while still pending or for
  // tickets this server never issued. Responses are shared, immutable blobs
  // — every ticket of a single-flight group points at the same bytes.
  [[nodiscard]] std::shared_ptr<const std::string> response(Ticket ticket) const;

  // Like response(), but retires the ticket: the table entry is erased so a
  // long-lived caller that consumes every response (the fleet simulator, a
  // proxy) holds the response table to its in-flight window instead of the
  // server's whole lifetime. The returned blob stays valid — responses are
  // shared immutable strings.
  [[nodiscard]] std::shared_ptr<const std::string> take_response(Ticket ticket);

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_.load(); }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_.load(); }
  [[nodiscard]] std::uint64_t pending() const;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::string render_summary() const { return stats().render(); }

  // Wall-clock service latency (microseconds per computed response) at
  // quantile q, per endpoint. Operational telemetry only: this is the one
  // surface that is NOT deterministic, which is why it lives outside
  // render_summary().
  [[nodiscard]] std::uint64_t wall_latency_micros(Endpoint endpoint, double q) const;

 private:
  struct Pending {
    Ticket ticket = 0;
    std::string bytes;
  };
  struct QueueShard {
    std::mutex mutex;
    std::deque<Pending> queue;
  };
  // One single-flight group: every queued request whose canonical key
  // matched, all answered by one computation.
  struct Flight {
    DeriveRequest request;
    std::string key;
    std::vector<Ticket> tickets;
    std::shared_ptr<const std::string> response;  // filled by the task
    std::uint64_t payload_bytes = 0;
    std::uint64_t wall_micros = 0;
    bool ok = false;
  };

  // Computes the response for one decoded request — the pure function the
  // whole service memoizes.
  [[nodiscard]] DeriveResponse serve(const DeriveRequest& request) const;

  // The request's campaign config, with the toolkit's surface scope for the
  // requested library applied when config_.debloat is set.
  [[nodiscard]] injector::InjectorConfig campaign_config(const DeriveRequest& request) const;

  void answer(Ticket ticket, std::shared_ptr<const std::string> response);

  const core::Toolkit& toolkit_;
  ServerConfig config_;
  std::vector<std::unique_ptr<QueueShard>> queues_;
  std::atomic<Ticket> next_ticket_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> answered_ok_{0};
  std::atomic<std::uint64_t> answered_error_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> cache_hits_{0};

  mutable std::mutex responses_mutex_;
  std::map<Ticket, std::shared_ptr<const std::string>> responses_;
  // Response memo: canonical request key -> encoded response bytes. Only
  // kOk responses are cached; errors stay recomputable (a library installed
  // later should turn them into answers).
  std::map<std::string, std::shared_ptr<const std::string>> response_cache_;

  mutable std::mutex metrics_mutex_;
  fleet::CycleSketch queue_depth_;
  fleet::CycleSketch derive_bytes_;
  fleet::CycleSketch bundle_bytes_;
  fleet::CycleSketch derive_wall_micros_;
  fleet::CycleSketch bundle_wall_micros_;
};

}  // namespace healers::server
