// Persistent spec cache for the derivation service (ISSUE 5).
//
// HEALERS' premise is that robust APIs are derived ONCE per library and then
// reused to harden any application on the host (paper §2.2); this file makes
// "once" survive the process. A cache file is the toolkit's campaign memo
// table with every key spelled out, so a fresh server (or a fresh `healers
// derive` run) imports it and answers matching requests with zero probes —
// observable via Toolkit::probes_executed().
//
// On-disk format: the fleet document-stream framing ("HFDS1\n" +
// u32-length-prefixed payloads, fleet::frame_stream) where each payload is
// one cache entry, dispatched on a per-payload magic:
//
//   "HSCE1"                                campaign entry, magic 5 bytes
//   str soname, u64 fingerprint
//   u64 seed, u32 variants, u64 probe_step_budget,
//   u64 testbed_heap, u64 testbed_stack
//   str campaign                           an "HCB1" binary campaign document
//
//   "HSIP1"                                implication-profile entry
//   str signature                          argument signature (class + notes)
//   u32 n, n × (u32 passes, u32 fails)     per-test-type tallies
//
//   "HSRP1"                                repair-policy entry
//   str soname, u64 fingerprint
//   u64 seed, u32 variants, u64 probe_step_budget,
//   u64 testbed_heap, u64 testbed_stack
//   str policy                             a <repair-policy> XML document
//
//   "HSSP1"                                surface-scope entry
//   str executable, str soname, u64 fingerprint
//   u32 n, n × str                         reachable symbols, sorted
//
// Repair-policy entries (ISSUE 9) carry campaign-derived RepairPolicy
// documents under the same key and fingerprint discipline as campaigns, so
// a warm fleet ships repaired wrappers without re-deriving (docs/repair.md).
//
// Surface-scope entries (docs/debloat.md) record which symbols of a library
// one executable's static closure can reach; a loaded toolkit scopes
// --debloat campaigns to the union of its installed scopes.
//
// Profile entries carry the cross-campaign implication learning (DESIGN.md,
// "Subsumption pruning"): a warm server fleet loads them and orders/prunes
// probes for novel-but-related argument signatures. A campaign-only file
// (written before profiles existed) still loads — the dispatch just finds
// no HSIP1 payloads.
//
// The fingerprint is part of the key: entries recorded against an older
// build of a library decode fine but are skipped at import, so a cache file
// can never serve stale specs. Both layers are strict decoders — a
// truncated or alien file is an error, never a partial cache. The one
// deliberate leniency is forward compatibility: a payload whose magic this
// build does not know (an entry kind a NEWER writer added) is skipped and
// counted, not fatal — old readers keep serving what they understand.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/toolkit.hpp"
#include "support/result.hpp"

namespace healers::server {

// Magic prefixes of the cache-entry kinds inside the stream framing.
inline constexpr std::string_view kCacheEntryMagic = "HSCE1";
inline constexpr std::string_view kProfileEntryMagic = "HSIP1";
inline constexpr std::string_view kRepairEntryMagic = "HSRP1";
inline constexpr std::string_view kSurfaceEntryMagic = "HSSP1";

// One campaign entry <-> its binary payload.
[[nodiscard]] std::string encode_cache_entry(const core::CachedCampaign& entry);
[[nodiscard]] Result<core::CachedCampaign> decode_cache_entry(std::string_view payload);

// One implication-profile entry <-> its binary payload.
[[nodiscard]] std::string encode_profile_entry(const lattice::SignatureProfile& profile);
[[nodiscard]] Result<lattice::SignatureProfile> decode_profile_entry(std::string_view payload);

// One repair-policy entry <-> its binary payload.
[[nodiscard]] std::string encode_repair_entry(const core::CachedRepairPolicy& entry);
[[nodiscard]] Result<core::CachedRepairPolicy> decode_repair_entry(std::string_view payload);

// One surface-scope entry <-> its binary payload.
[[nodiscard]] std::string encode_surface_entry(const core::SurfaceScope& entry);
[[nodiscard]] Result<core::SurfaceScope> decode_surface_entry(std::string_view payload);

// A campaign-only cache <-> the framed file image (deterministic: entries
// are emitted in the toolkit's canonical key order). Strict: the image must
// contain campaign entries only — save_cache_file writes the mixed stream.
[[nodiscard]] std::string encode_cache_file(const std::vector<core::CachedCampaign>& entries);
[[nodiscard]] Result<std::vector<core::CachedCampaign>> decode_cache_file(std::string_view image);

// Convenience file I/O: save the toolkit's memo table AND its learned
// implication profiles / import a saved file of either vintage.
// load_cache_file returns the number of campaign entries admitted (entries
// whose library or fingerprint no longer matches are decoded but skipped;
// profile/repair/surface entries merge into the toolkit's stores). Payloads
// with an unrecognized magic are counted into *skipped_unknown (when
// non-null) and otherwise ignored — never an error.
[[nodiscard]] Status save_cache_file(const core::Toolkit& toolkit, const std::string& path);
[[nodiscard]] Result<std::size_t> load_cache_file(const core::Toolkit& toolkit,
                                                  const std::string& path,
                                                  std::size_t* skipped_unknown = nullptr);

}  // namespace healers::server
