// Persistent spec cache for the derivation service (ISSUE 5).
//
// HEALERS' premise is that robust APIs are derived ONCE per library and then
// reused to harden any application on the host (paper §2.2); this file makes
// "once" survive the process. A cache file is the toolkit's campaign memo
// table with every key spelled out, so a fresh server (or a fresh `healers
// derive` run) imports it and answers matching requests with zero probes —
// observable via Toolkit::probes_executed().
//
// On-disk format: the fleet document-stream framing ("HFDS1\n" +
// u32-length-prefixed payloads, fleet::frame_stream) where each payload is
// one cache entry:
//
//   "HSCE1"                                magic, 5 bytes
//   str soname, u64 fingerprint
//   u64 seed, u32 variants, u64 probe_step_budget,
//   u64 testbed_heap, u64 testbed_stack
//   str campaign                           an "HCB1" binary campaign document
//
// The fingerprint is part of the key: entries recorded against an older
// build of a library decode fine but are skipped at import, so a cache file
// can never serve stale specs. Both layers are strict decoders — a
// truncated or alien file is an error, never a partial cache.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/toolkit.hpp"
#include "support/result.hpp"

namespace healers::server {

// Magic prefix of one cache entry inside the stream framing.
inline constexpr std::string_view kCacheEntryMagic = "HSCE1";

// One entry <-> its binary payload.
[[nodiscard]] std::string encode_cache_entry(const core::CachedCampaign& entry);
[[nodiscard]] Result<core::CachedCampaign> decode_cache_entry(std::string_view payload);

// A whole cache <-> the framed file image (deterministic: entries are
// emitted in the toolkit's canonical key order).
[[nodiscard]] std::string encode_cache_file(const std::vector<core::CachedCampaign>& entries);
[[nodiscard]] Result<std::vector<core::CachedCampaign>> decode_cache_file(std::string_view image);

// Convenience file I/O: save the toolkit's memo table / import a saved one.
// load_cache_file returns the number of entries admitted (entries whose
// library or fingerprint no longer matches are decoded but skipped).
[[nodiscard]] Status save_cache_file(const core::Toolkit& toolkit, const std::string& path);
[[nodiscard]] Result<std::size_t> load_cache_file(const core::Toolkit& toolkit,
                                                  const std::string& path);

}  // namespace healers::server
