#include "server/spec_cache.hpp"

#include <fstream>
#include <sstream>

#include "fleet/wire.hpp"
#include "server/codec.hpp"

namespace healers::server {

std::string encode_cache_entry(const core::CachedCampaign& entry) {
  using fleet::codec::put_str;
  using fleet::codec::put_u32;
  using fleet::codec::put_u64;
  std::string out;
  out.append(kCacheEntryMagic);
  put_str(out, entry.soname);
  put_u64(out, entry.fingerprint);
  put_u64(out, entry.seed);
  put_u32(out, static_cast<std::uint32_t>(entry.variants));
  put_u64(out, entry.probe_step_budget);
  put_u64(out, entry.testbed_heap);
  put_u64(out, entry.testbed_stack);
  put_str(out, encode_campaign_binary(entry.result));
  return out;
}

Result<core::CachedCampaign> decode_cache_entry(std::string_view payload) {
  if (payload.substr(0, kCacheEntryMagic.size()) != kCacheEntryMagic) {
    return Error("cache entry: bad magic");
  }
  fleet::codec::Cursor cur(payload.substr(kCacheEntryMagic.size()));
  core::CachedCampaign entry;
  entry.soname = cur.str();
  entry.fingerprint = cur.u64();
  entry.seed = cur.u64();
  entry.variants = static_cast<int>(cur.u32());
  entry.probe_step_budget = cur.u64();
  entry.testbed_heap = cur.u64();
  entry.testbed_stack = cur.u64();
  const std::string campaign_bytes = cur.str();
  if (!cur.ok()) return Error("cache entry: truncated");
  if (!cur.at_end()) return Error("cache entry: trailing bytes");
  auto campaign = decode_campaign_binary(campaign_bytes);
  if (!campaign.ok()) return Error("cache entry: " + campaign.error().message);
  entry.result = std::move(campaign).take();
  return entry;
}

std::string encode_cache_file(const std::vector<core::CachedCampaign>& entries) {
  std::vector<std::string> documents;
  documents.reserve(entries.size());
  for (const core::CachedCampaign& entry : entries) documents.push_back(encode_cache_entry(entry));
  return fleet::frame_stream(documents);
}

Result<std::vector<core::CachedCampaign>> decode_cache_file(std::string_view image) {
  auto documents = fleet::unframe_stream(image);
  if (!documents.ok()) return Error("cache file: " + documents.error().message);
  std::vector<core::CachedCampaign> entries;
  entries.reserve(documents.value().size());
  for (const std::string& doc : documents.value()) {
    auto entry = decode_cache_entry(doc);
    if (!entry.ok()) return entry.error();
    entries.push_back(std::move(entry).take());
  }
  return entries;
}

Status save_cache_file(const core::Toolkit& toolkit, const std::string& path) {
  const std::string image = encode_cache_file(toolkit.export_campaigns());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::failure("cannot write " + path);
  out << image;
  if (!out) return Status::failure("short write to " + path);
  return Status::success();
}

Result<std::size_t> load_cache_file(const core::Toolkit& toolkit, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto entries = decode_cache_file(buffer.str());
  if (!entries.ok()) return Error(path + ": " + entries.error().message);
  return toolkit.import_campaigns(std::move(entries).take());
}

}  // namespace healers::server
