#include "server/spec_cache.hpp"

#include <fstream>
#include <sstream>

#include "fleet/wire.hpp"
#include "server/codec.hpp"

namespace healers::server {

std::string encode_cache_entry(const core::CachedCampaign& entry) {
  using fleet::codec::put_str;
  using fleet::codec::put_u32;
  using fleet::codec::put_u64;
  std::string out;
  out.append(kCacheEntryMagic);
  put_str(out, entry.soname);
  put_u64(out, entry.fingerprint);
  put_u64(out, entry.seed);
  put_u32(out, static_cast<std::uint32_t>(entry.variants));
  put_u64(out, entry.probe_step_budget);
  put_u64(out, entry.testbed_heap);
  put_u64(out, entry.testbed_stack);
  put_str(out, encode_campaign_binary(entry.result));
  return out;
}

Result<core::CachedCampaign> decode_cache_entry(std::string_view payload) {
  if (payload.substr(0, kCacheEntryMagic.size()) != kCacheEntryMagic) {
    return Error("cache entry: bad magic");
  }
  fleet::codec::Cursor cur(payload.substr(kCacheEntryMagic.size()));
  core::CachedCampaign entry;
  entry.soname = cur.str();
  entry.fingerprint = cur.u64();
  entry.seed = cur.u64();
  entry.variants = static_cast<int>(cur.u32());
  entry.probe_step_budget = cur.u64();
  entry.testbed_heap = cur.u64();
  entry.testbed_stack = cur.u64();
  const std::string campaign_bytes = cur.str();
  if (!cur.ok()) return Error("cache entry: truncated");
  if (!cur.at_end()) return Error("cache entry: trailing bytes");
  auto campaign = decode_campaign_binary(campaign_bytes);
  if (!campaign.ok()) return Error("cache entry: " + campaign.error().message);
  entry.result = std::move(campaign).take();
  return entry;
}

std::string encode_profile_entry(const lattice::SignatureProfile& profile) {
  using fleet::codec::put_str;
  using fleet::codec::put_u32;
  std::string out;
  out.append(kProfileEntryMagic);
  put_str(out, profile.signature);
  put_u32(out, static_cast<std::uint32_t>(lattice::kTestTypeCount));
  for (std::size_t i = 0; i < lattice::kTestTypeCount; ++i) {
    put_u32(out, profile.passes[i]);
    put_u32(out, profile.fails[i]);
  }
  return out;
}

Result<lattice::SignatureProfile> decode_profile_entry(std::string_view payload) {
  if (payload.substr(0, kProfileEntryMagic.size()) != kProfileEntryMagic) {
    return Error("profile entry: bad magic");
  }
  fleet::codec::Cursor cur(payload.substr(kProfileEntryMagic.size()));
  lattice::SignatureProfile profile;
  profile.signature = cur.str();
  const std::uint32_t count = cur.u32();
  if (cur.ok() && count != lattice::kTestTypeCount) {
    // A different lattice shape cannot be merged tally-for-tally.
    return Error("profile entry: test-type count mismatch");
  }
  for (std::size_t i = 0; i < lattice::kTestTypeCount; ++i) {
    profile.passes[i] = cur.u32();
    profile.fails[i] = cur.u32();
  }
  if (!cur.ok()) return Error("profile entry: truncated");
  if (!cur.at_end()) return Error("profile entry: trailing bytes");
  return profile;
}

std::string encode_repair_entry(const core::CachedRepairPolicy& entry) {
  using fleet::codec::put_str;
  using fleet::codec::put_u32;
  using fleet::codec::put_u64;
  std::string out;
  out.append(kRepairEntryMagic);
  put_str(out, entry.soname);
  put_u64(out, entry.fingerprint);
  put_u64(out, entry.seed);
  put_u32(out, static_cast<std::uint32_t>(entry.variants));
  put_u64(out, entry.probe_step_budget);
  put_u64(out, entry.testbed_heap);
  put_u64(out, entry.testbed_stack);
  put_str(out, xml::serialize(entry.policy.to_xml()));
  return out;
}

Result<core::CachedRepairPolicy> decode_repair_entry(std::string_view payload) {
  if (payload.substr(0, kRepairEntryMagic.size()) != kRepairEntryMagic) {
    return Error("repair entry: bad magic");
  }
  fleet::codec::Cursor cur(payload.substr(kRepairEntryMagic.size()));
  core::CachedRepairPolicy entry;
  entry.soname = cur.str();
  entry.fingerprint = cur.u64();
  entry.seed = cur.u64();
  entry.variants = static_cast<int>(cur.u32());
  entry.probe_step_budget = cur.u64();
  entry.testbed_heap = cur.u64();
  entry.testbed_stack = cur.u64();
  const std::string policy_text = cur.str();
  if (!cur.ok()) return Error("repair entry: truncated");
  if (!cur.at_end()) return Error("repair entry: trailing bytes");
  auto doc = xml::parse(policy_text);
  if (!doc.ok()) return Error("repair entry: " + doc.error().message);
  auto policy = gen::RepairPolicy::from_xml(doc.value());
  if (!policy.ok()) return Error("repair entry: " + policy.error().message);
  entry.policy = std::move(policy).take();
  return entry;
}

std::string encode_surface_entry(const core::SurfaceScope& entry) {
  using fleet::codec::put_str;
  using fleet::codec::put_u32;
  using fleet::codec::put_u64;
  std::string out;
  out.append(kSurfaceEntryMagic);
  put_str(out, entry.executable);
  put_str(out, entry.soname);
  put_u64(out, entry.fingerprint);
  put_u32(out, static_cast<std::uint32_t>(entry.symbols.size()));
  for (const std::string& symbol : entry.symbols) put_str(out, symbol);
  return out;
}

Result<core::SurfaceScope> decode_surface_entry(std::string_view payload) {
  if (payload.substr(0, kSurfaceEntryMagic.size()) != kSurfaceEntryMagic) {
    return Error("surface entry: bad magic");
  }
  fleet::codec::Cursor cur(payload.substr(kSurfaceEntryMagic.size()));
  core::SurfaceScope entry;
  entry.executable = cur.str();
  entry.soname = cur.str();
  entry.fingerprint = cur.u64();
  const std::uint32_t count = cur.u32();
  for (std::uint32_t i = 0; cur.ok() && i < count; ++i) entry.symbols.push_back(cur.str());
  if (!cur.ok()) return Error("surface entry: truncated");
  if (!cur.at_end()) return Error("surface entry: trailing bytes");
  return entry;
}

std::string encode_cache_file(const std::vector<core::CachedCampaign>& entries) {
  std::vector<std::string> documents;
  documents.reserve(entries.size());
  for (const core::CachedCampaign& entry : entries) documents.push_back(encode_cache_entry(entry));
  return fleet::frame_stream(documents);
}

Result<std::vector<core::CachedCampaign>> decode_cache_file(std::string_view image) {
  auto documents = fleet::unframe_stream(image);
  if (!documents.ok()) return Error("cache file: " + documents.error().message);
  std::vector<core::CachedCampaign> entries;
  entries.reserve(documents.value().size());
  for (const std::string& doc : documents.value()) {
    auto entry = decode_cache_entry(doc);
    if (!entry.ok()) return entry.error();
    entries.push_back(std::move(entry).take());
  }
  return entries;
}

Status save_cache_file(const core::Toolkit& toolkit, const std::string& path) {
  // Campaign entries (canonical key order) followed by profile entries
  // (sorted by signature) — the whole image is deterministic.
  std::vector<std::string> documents;
  for (const core::CachedCampaign& entry : toolkit.export_campaigns()) {
    documents.push_back(encode_cache_entry(entry));
  }
  for (const lattice::SignatureProfile& profile :
       toolkit.implication_profiles()->export_profiles()) {
    documents.push_back(encode_profile_entry(profile));
  }
  for (const core::CachedRepairPolicy& entry : toolkit.export_repair_policies()) {
    documents.push_back(encode_repair_entry(entry));
  }
  for (const core::SurfaceScope& entry : toolkit.export_surface_scopes()) {
    documents.push_back(encode_surface_entry(entry));
  }
  const std::string image = fleet::frame_stream(documents);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::failure("cannot write " + path);
  out << image;
  if (!out) return Status::failure("short write to " + path);
  return Status::success();
}

Result<std::size_t> load_cache_file(const core::Toolkit& toolkit, const std::string& path,
                                    std::size_t* skipped_unknown) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto documents = fleet::unframe_stream(buffer.str());
  if (!documents.ok()) return Error(path + ": " + documents.error().message);
  std::vector<core::CachedCampaign> campaigns;
  std::vector<lattice::SignatureProfile> profiles;
  std::vector<core::CachedRepairPolicy> repairs;
  std::vector<core::SurfaceScope> scopes;
  std::size_t unknown = 0;
  for (const std::string& doc : documents.value()) {
    if (doc.substr(0, kProfileEntryMagic.size()) == kProfileEntryMagic) {
      auto profile = decode_profile_entry(doc);
      if (!profile.ok()) return Error(path + ": " + profile.error().message);
      profiles.push_back(std::move(profile).take());
      continue;
    }
    if (doc.substr(0, kRepairEntryMagic.size()) == kRepairEntryMagic) {
      auto repair = decode_repair_entry(doc);
      if (!repair.ok()) return Error(path + ": " + repair.error().message);
      repairs.push_back(std::move(repair).take());
      continue;
    }
    if (doc.substr(0, kSurfaceEntryMagic.size()) == kSurfaceEntryMagic) {
      auto scope = decode_surface_entry(doc);
      if (!scope.ok()) return Error(path + ": " + scope.error().message);
      scopes.push_back(std::move(scope).take());
      continue;
    }
    if (doc.substr(0, kCacheEntryMagic.size()) != kCacheEntryMagic) {
      // An entry kind this build does not know — written by a newer toolkit.
      // Skipping it keeps old readers serving everything they DO understand.
      ++unknown;
      continue;
    }
    auto entry = decode_cache_entry(doc);
    if (!entry.ok()) return Error(path + ": " + entry.error().message);
    campaigns.push_back(std::move(entry).take());
  }
  if (skipped_unknown != nullptr) *skipped_unknown = unknown;
  toolkit.implication_profiles()->import_profiles(profiles);
  toolkit.import_repair_policies(std::move(repairs));
  toolkit.import_surface_scopes(std::move(scopes));
  return toolkit.import_campaigns(std::move(campaigns));
}

}  // namespace healers::server
