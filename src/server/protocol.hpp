// The derivation service's request/response protocol (ISSUE 5).
//
// Clients ask the service for the two artifacts HEALERS derives per library:
//
//   * kDerive  — the robust API (a full injector::CampaignResult), shipped
//                as campaign XML or the compact "HCB1" binary document;
//   * kBundle  — a wrapper policy bundle: the generated C wrapper source
//                (Fig 3) for one wrapper type. Robustness bundles derive the
//                campaign first (server-side, memoized) — the client never
//                has to ship a spec file back.
//
// Requests and responses both exist in XML and binary wire forms, sniffed
// by magic exactly like the fleet document formats, so a mixed client
// population can talk to one server during a rollout. One format field
// controls BOTH the envelope and the campaign payload encoding — binary
// payloads never ride inside XML character data.
//
// Binary request ("HRQ1"):  u32 endpoint, str soname, u64 seed,
//   u32 variants, u64 probe_step_budget, u64 testbed_heap,
//   u64 testbed_stack, u32 bundle kind, u32 format
// Binary response ("HRS1"): u32 status, u64 probes, str error, str payload
//
// Everything in a response is a pure function of the request and the
// library content: byte-identical across worker counts, queue shapes, and
// (for cache hits) across server restarts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "injector/injector.hpp"
#include "support/result.hpp"
#include "xml/xml.hpp"

namespace healers::server {

inline constexpr std::string_view kRequestMagic = "HRQ1";
inline constexpr std::string_view kResponseMagic = "HRS1";

enum class Endpoint : std::uint8_t {
  kDerive = 0,  // robust-API derivation -> campaign document
  kBundle = 1,  // wrapper policy bundle -> generated C source
};

// Which wrapper policy a kBundle request wants (mirrors `healers
// gen-source --type`).
enum class BundleKind : std::uint8_t {
  kRobustness = 0,  // argument checks from the derived robust API
  kSecurity = 1,    // heap canaries + stack guards
  kProfiling = 2,   // Fig 3 call counting / timing / errno profiling
  kRepair = 3,      // campaign-derived repair policy (truncate / substitute)
};

// Wire encoding of the envelope AND of a derive response's campaign payload.
enum class WireFormat : std::uint8_t {
  kXml = 0,
  kBinary = 1,
};

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kError = 1,  // bad request, unknown library, campaign failure
  kShed = 2,   // admission control rejected the request (queue overflow)
};

[[nodiscard]] std::string_view to_string(Endpoint endpoint) noexcept;
[[nodiscard]] std::string_view to_string(BundleKind kind) noexcept;
[[nodiscard]] std::string_view to_string(ResponseStatus status) noexcept;

struct DeriveRequest {
  Endpoint endpoint = Endpoint::kDerive;
  std::string soname;
  // Result-affecting campaign knobs; defaults mirror injector::InjectorConfig.
  // Engine knobs (jobs, snapshot_reset) are deliberately absent: they never
  // change a single output byte, so they are the server's business.
  std::uint64_t seed = 42;
  int variants = 2;
  std::uint64_t probe_step_budget = 2'000'000;
  std::uint64_t testbed_heap = 256 << 10;
  std::uint64_t testbed_stack = 64 << 10;
  BundleKind bundle = BundleKind::kRobustness;  // kBundle requests only
  WireFormat format = WireFormat::kXml;

  // The campaign configuration this request pins down.
  [[nodiscard]] injector::InjectorConfig injector_config() const;

  // Canonical single-flight key: two requests with equal keys are satisfied
  // by one computation and receive byte-identical response bytes.
  [[nodiscard]] std::string canonical_key() const;

  [[nodiscard]] xml::Node to_xml() const;
  [[nodiscard]] static Result<DeriveRequest> from_xml(const xml::Node& node);
  [[nodiscard]] std::string encode() const;  // in this->format
  // Format-sniffing decoder: binary by magic, otherwise XML.
  [[nodiscard]] static Result<DeriveRequest> decode(std::string_view payload);
};

struct DeriveResponse {
  ResponseStatus status = ResponseStatus::kOk;
  std::uint64_t probes = 0;   // campaign's recorded probe count (kDerive ok)
  std::string error;          // kError / kShed detail
  std::string payload;        // campaign document or bundle C source

  [[nodiscard]] xml::Node to_xml() const;
  [[nodiscard]] static Result<DeriveResponse> from_xml(const xml::Node& node);
  [[nodiscard]] std::string encode(WireFormat format) const;
  [[nodiscard]] static Result<DeriveResponse> decode(std::string_view payload);
};

}  // namespace healers::server
