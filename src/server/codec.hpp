// Binary codec for campaign results (the derivation server's payload
// format, ISSUE 5).
//
// Robust-API specs already serialize as self-describing XML (§3.1
// declaration files); at service scale the XML round-trip dominates a warm
// response, so the server can ship the SAME injector::CampaignResult as a
// compact length-prefixed binary document built on fleet/wire's codec
// primitives (HDB-style, like the dossier format):
//
//   "HCB1"                                 magic, 4 bytes
//   str library, u64 seed, u32 nspecs, per spec:
//     str function, str library, str declaration
//     u64 probes, u64 failures, u64 crashes, u64 hangs, u64 aborts
//     u32 flags (bit0 skipped_noreturn)
//     u32 nargs, per arg:
//       u32 index, str ctype, u32 class
//       u32 check bits (bit0 nonnull, bit1 mapped, bit2 writable,
//           bit3 terminated, bit4 size, bit5 heapptr, bit6 file,
//           bit7 callback, bit8 has-range), if has-range: i64 lo, i64 hi
//       u32 nverdicts, per verdict:
//         u32 type id, u32 probes, u32 failures, u32 crashes, u32 hangs,
//         u32 aborts, str first_failure
//
// str = u32 length + bytes; all integers little-endian fixed-width; i64 is
// the two's-complement image in a u64. The decoder is strict: truncated or
// malformed payloads produce an error Result, never a partial campaign.
// Encoding is deterministic — identical campaigns encode byte-identically —
// so served responses can be byte-compared across worker counts.
#pragma once

#include <string>
#include <string_view>

#include "injector/robust_spec.hpp"
#include "support/result.hpp"

namespace healers::server {

// Magic prefix of a binary campaign document.
inline constexpr std::string_view kCampaignMagic = "HCB1";

// CampaignResult -> compact binary document.
[[nodiscard]] std::string encode_campaign_binary(const injector::CampaignResult& campaign);

// Strict binary decoder (payload must start with kCampaignMagic).
[[nodiscard]] Result<injector::CampaignResult> decode_campaign_binary(std::string_view payload);

// Format-sniffing decoder: binary by magic, otherwise parsed as a
// <campaign> XML document.
[[nodiscard]] Result<injector::CampaignResult> decode_campaign(std::string_view payload);

// True when the payload carries the binary campaign magic.
[[nodiscard]] bool is_campaign_binary(std::string_view payload) noexcept;

}  // namespace healers::server
