#include "server/codec.hpp"

#include "fleet/wire.hpp"
#include "xml/xml.hpp"

namespace healers::server {
namespace {

using fleet::codec::Cursor;
using fleet::codec::put_str;
using fleet::codec::put_u32;
using fleet::codec::put_u64;

// DerivedChecks <-> flag word (layout documented in codec.hpp).
enum CheckBit : std::uint32_t {
  kNonnull = 1U << 0,
  kMapped = 1U << 1,
  kWritable = 1U << 2,
  kTerminated = 1U << 3,
  kSizeCheck = 1U << 4,
  kHeapPtr = 1U << 5,
  kFile = 1U << 6,
  kCallback = 1U << 7,
  kHasRange = 1U << 8,
};

std::uint32_t pack_checks(const injector::DerivedChecks& checks) {
  std::uint32_t bits = 0;
  if (checks.require_nonnull) bits |= kNonnull;
  if (checks.require_mapped) bits |= kMapped;
  if (checks.require_writable) bits |= kWritable;
  if (checks.require_terminated) bits |= kTerminated;
  if (checks.require_size_check) bits |= kSizeCheck;
  if (checks.require_heap_pointer) bits |= kHeapPtr;
  if (checks.require_file) bits |= kFile;
  if (checks.require_callback) bits |= kCallback;
  if (checks.range.has_value()) bits |= kHasRange;
  return bits;
}

injector::DerivedChecks unpack_checks(std::uint32_t bits) {
  injector::DerivedChecks checks;
  checks.require_nonnull = (bits & kNonnull) != 0;
  checks.require_mapped = (bits & kMapped) != 0;
  checks.require_writable = (bits & kWritable) != 0;
  checks.require_terminated = (bits & kTerminated) != 0;
  checks.require_size_check = (bits & kSizeCheck) != 0;
  checks.require_heap_pointer = (bits & kHeapPtr) != 0;
  checks.require_file = (bits & kFile) != 0;
  checks.require_callback = (bits & kCallback) != 0;
  return checks;
}

}  // namespace

std::string encode_campaign_binary(const injector::CampaignResult& campaign) {
  std::string out;
  out.append(kCampaignMagic);
  put_str(out, campaign.library);
  put_u64(out, campaign.seed);
  put_u32(out, static_cast<std::uint32_t>(campaign.specs.size()));
  for (const injector::RobustSpec& spec : campaign.specs) {
    put_str(out, spec.function);
    put_str(out, spec.library);
    put_str(out, spec.declaration);
    put_u64(out, spec.total_probes);
    put_u64(out, spec.total_failures);
    put_u64(out, spec.crashes);
    put_u64(out, spec.hangs);
    put_u64(out, spec.aborts);
    put_u32(out, spec.skipped_noreturn ? 1U : 0U);
    put_u32(out, static_cast<std::uint32_t>(spec.args.size()));
    for (const injector::ArgSpec& arg : spec.args) {
      put_u32(out, static_cast<std::uint32_t>(arg.index));
      put_str(out, arg.ctype);
      put_u32(out, static_cast<std::uint32_t>(arg.cls));
      put_u32(out, pack_checks(arg.checks));
      if (arg.checks.range.has_value()) {
        put_u64(out, static_cast<std::uint64_t>(arg.checks.range->first));
        put_u64(out, static_cast<std::uint64_t>(arg.checks.range->second));
      }
      put_u32(out, static_cast<std::uint32_t>(arg.verdicts.size()));
      for (const injector::TypeVerdict& v : arg.verdicts) {
        put_u32(out, static_cast<std::uint32_t>(v.id));
        put_u32(out, static_cast<std::uint32_t>(v.probes));
        put_u32(out, static_cast<std::uint32_t>(v.failures));
        put_u32(out, static_cast<std::uint32_t>(v.crashes));
        put_u32(out, static_cast<std::uint32_t>(v.hangs));
        put_u32(out, static_cast<std::uint32_t>(v.aborts));
        put_str(out, v.first_failure);
      }
    }
  }
  return out;
}

Result<injector::CampaignResult> decode_campaign_binary(std::string_view payload) {
  if (!is_campaign_binary(payload)) return Error("binary campaign: bad magic");
  Cursor cur(payload.substr(kCampaignMagic.size()));
  injector::CampaignResult campaign;
  campaign.library = cur.str();
  campaign.seed = cur.u64();
  const std::uint32_t nspecs = cur.u32();
  // Cheap sanity bound before reserving: every spec costs >= 56 bytes.
  if (!cur.ok() || nspecs > payload.size()) return Error("binary campaign: truncated header");
  campaign.specs.reserve(nspecs);
  for (std::uint32_t s = 0; s < nspecs && cur.ok(); ++s) {
    injector::RobustSpec spec;
    spec.function = cur.str();
    spec.library = cur.str();
    spec.declaration = cur.str();
    spec.total_probes = cur.u64();
    spec.total_failures = cur.u64();
    spec.crashes = cur.u64();
    spec.hangs = cur.u64();
    spec.aborts = cur.u64();
    spec.skipped_noreturn = (cur.u32() & 1U) != 0;
    const std::uint32_t nargs = cur.u32();
    if (!cur.ok() || nargs > payload.size()) return Error("binary campaign: truncated spec");
    for (std::uint32_t a = 0; a < nargs && cur.ok(); ++a) {
      injector::ArgSpec arg;
      arg.index = static_cast<int>(cur.u32());
      arg.ctype = cur.str();
      const std::uint32_t cls = cur.u32();
      if (!cur.ok() || cls > static_cast<std::uint32_t>(parser::TypeClass::kPointer)) {
        return Error("binary campaign: bad type class");
      }
      arg.cls = static_cast<parser::TypeClass>(cls);
      const std::uint32_t check_bits = cur.u32();
      arg.checks = unpack_checks(check_bits);
      if ((check_bits & 0x100U) != 0) {
        const auto lo = static_cast<std::int64_t>(cur.u64());
        const auto hi = static_cast<std::int64_t>(cur.u64());
        arg.checks.range = {lo, hi};
      }
      const std::uint32_t nverdicts = cur.u32();
      if (!cur.ok() || nverdicts > payload.size()) return Error("binary campaign: truncated arg");
      for (std::uint32_t v = 0; v < nverdicts && cur.ok(); ++v) {
        injector::TypeVerdict verdict;
        const std::uint32_t id = cur.u32();
        if (!cur.ok() || id > static_cast<std::uint32_t>(lattice::TestTypeId::kFInf)) {
          return Error("binary campaign: bad test type");
        }
        verdict.id = static_cast<lattice::TestTypeId>(id);
        verdict.probes = static_cast<int>(cur.u32());
        verdict.failures = static_cast<int>(cur.u32());
        verdict.crashes = static_cast<int>(cur.u32());
        verdict.hangs = static_cast<int>(cur.u32());
        verdict.aborts = static_cast<int>(cur.u32());
        verdict.first_failure = cur.str();
        arg.verdicts.push_back(std::move(verdict));
      }
      spec.args.push_back(std::move(arg));
    }
    campaign.specs.push_back(std::move(spec));
  }
  if (!cur.ok()) return Error("binary campaign: truncated");
  if (!cur.at_end()) return Error("binary campaign: trailing bytes");
  return campaign;
}

Result<injector::CampaignResult> decode_campaign(std::string_view payload) {
  if (is_campaign_binary(payload)) return decode_campaign_binary(payload);
  auto parsed = xml::parse(payload);
  if (!parsed.ok()) return Error("xml campaign: " + parsed.error().message);
  return injector::CampaignResult::from_xml(parsed.value());
}

bool is_campaign_binary(std::string_view payload) noexcept {
  return payload.substr(0, kCampaignMagic.size()) == kCampaignMagic;
}

}  // namespace healers::server
