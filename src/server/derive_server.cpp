#include "server/derive_server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "gen/microgen.hpp"
#include "server/codec.hpp"
#include "support/thread_pool.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::server {
namespace {

// Shed responses are emitted before the request is ever decoded (that is
// the point of admission control), so they are always XML envelopes — and
// they are all byte-identical, so every shed ticket shares ONE immutable
// blob: a burst that sheds a million requests allocates nothing per victim.
std::shared_ptr<const std::string> shed_response() {
  static const std::shared_ptr<const std::string> blob = [] {
    DeriveResponse response;
    response.status = ResponseStatus::kShed;
    response.error = "admission control: request queue full";
    return std::make_shared<const std::string>(response.encode(WireFormat::kXml));
  }();
  return blob;
}

void render_quantiles(std::ostringstream& out, const char* label, std::uint64_t p50,
                      std::uint64_t p95, std::uint64_t p99) {
  out << "  " << label << ": p50=" << p50 << " p95=" << p95 << " p99=" << p99 << "\n";
}

}  // namespace

DeriveServer::DeriveServer(const core::Toolkit& toolkit, ServerConfig config)
    : toolkit_(toolkit), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  for (unsigned i = 0; i < config_.shards; ++i) queues_.push_back(std::make_unique<QueueShard>());
}

DeriveServer::Ticket DeriveServer::submit(std::string request_bytes) {
  const Ticket ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QueueShard& shard = *queues_[ticket % queues_.size()];
  Ticket shed_ticket = 0;
  {
    std::lock_guard lock(shard.mutex);
    {
      std::lock_guard metrics(metrics_mutex_);
      queue_depth_.add(shard.queue.size());
    }
    if (shard.queue.size() >= config_.queue_capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (config_.policy == AdmissionPolicy::kShedNewest) {
        shed_ticket = ticket;
      } else {
        shed_ticket = shard.queue.front().ticket;  // kShedOldest: evict the head
        shard.queue.pop_front();
        shard.queue.push_back(Pending{ticket, std::move(request_bytes)});
      }
    } else {
      shard.queue.push_back(Pending{ticket, std::move(request_bytes)});
    }
  }
  if (shed_ticket != 0) answer(shed_ticket, shed_response());
  return ticket;
}

injector::InjectorConfig DeriveServer::campaign_config(const DeriveRequest& request) const {
  injector::InjectorConfig config = request.injector_config();
  if (config_.debloat) config.only_functions = toolkit_.surface_scope_for(request.soname);
  return config;
}

DeriveResponse DeriveServer::serve(const DeriveRequest& request) const {
  DeriveResponse response;
  auto reject = [&response](std::string message) {
    response.status = ResponseStatus::kError;
    response.error = std::move(message);
    response.payload.clear();
    response.probes = 0;
    return response;
  };

  if (request.endpoint == Endpoint::kDerive) {
    auto campaign = toolkit_.derive_robust_api(request.soname, campaign_config(request));
    if (!campaign.ok()) return reject(campaign.error().message);
    response.probes = campaign.value().total_probes();
    response.payload = request.format == WireFormat::kBinary
                           ? encode_campaign_binary(campaign.value())
                           : xml::serialize(campaign.value().to_xml());
    return response;
  }

  // kBundle: the generated wrapper C source for one policy (Fig 3). The
  // robustness bundle derives its campaign server-side first — clients never
  // round-trip a spec file.
  gen::WrapperBuilder builder(std::string(to_string(request.bundle)) + "-wrapper");
  injector::CampaignResult campaign;
  const injector::CampaignResult* campaign_ptr = nullptr;
  switch (request.bundle) {
    case BundleKind::kRobustness: {
      auto derived = toolkit_.derive_robust_api(request.soname, campaign_config(request));
      if (!derived.ok()) return reject(derived.error().message);
      campaign = std::move(derived).take();
      campaign_ptr = &campaign;
      response.probes = campaign.total_probes();
      builder.add(gen::prototype_gen())
          .add(wrappers::arg_check_gen())
          .add(gen::call_counter_gen())
          .add(gen::caller_gen());
      break;
    }
    case BundleKind::kSecurity:
      builder.add(gen::prototype_gen())
          .add(wrappers::heap_canary_gen())
          .add(wrappers::stack_guard_gen())
          .add(gen::caller_gen());
      break;
    case BundleKind::kProfiling:
      for (const auto& g : wrappers::fig3_generators()) builder.add(g);
      break;
    case BundleKind::kRepair: {
      // Repair bundles derive the campaign AND the policy server-side, so a
      // warm fleet ships repaired wrappers with zero client-side probes.
      auto derived = toolkit_.derive_robust_api(request.soname, campaign_config(request));
      if (!derived.ok()) return reject(derived.error().message);
      campaign = std::move(derived).take();
      campaign_ptr = &campaign;
      response.probes = campaign.total_probes();
      auto policy = toolkit_.derive_repair_policy(request.soname, campaign_config(request));
      if (!policy.ok()) return reject(policy.error().message);
      builder.add(gen::prototype_gen())
          .add(wrappers::repair_gen(
              std::make_shared<const gen::RepairPolicy>(std::move(policy).take())))
          .add(gen::call_counter_gen())
          .add(gen::caller_gen());
      break;
    }
  }
  auto source = toolkit_.wrapper_source(request.soname, builder, campaign_ptr);
  if (!source.ok()) return reject(source.error().message);
  response.payload = std::move(source).take();
  return response;
}

void DeriveServer::answer(Ticket ticket, std::shared_ptr<const std::string> response) {
  std::lock_guard lock(responses_mutex_);
  responses_[ticket] = std::move(response);
}

void DeriveServer::drain() {
  // Claim everything queued right now; later submits wait for the next drain.
  std::vector<Pending> claimed;
  for (auto& shard : queues_) {
    std::lock_guard lock(shard->mutex);
    while (!shard->queue.empty()) {
      claimed.push_back(std::move(shard->queue.front()));
      shard->queue.pop_front();
    }
  }
  if (claimed.empty()) return;
  // Canonical order: by ticket, i.e. submission order — so flight grouping
  // and every counter below are independent of shard count and worker count.
  std::sort(claimed.begin(), claimed.end(),
            [](const Pending& a, const Pending& b) { return a.ticket < b.ticket; });

  std::vector<Flight> flights;
  std::map<std::string, std::size_t> flight_index;
  for (Pending& pending : claimed) {
    auto request = DeriveRequest::decode(pending.bytes);
    if (!request.ok()) {
      // Undecodable requests get an immediate XML error envelope; there is
      // no key to deduplicate or cache them under.
      DeriveResponse response;
      response.status = ResponseStatus::kError;
      response.error = request.error().message;
      answer(pending.ticket,
             std::make_shared<const std::string>(response.encode(WireFormat::kXml)));
      answered_error_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::string key = request.value().canonical_key();
    {
      std::lock_guard lock(responses_mutex_);
      const auto cached = response_cache_.find(key);
      if (cached != response_cache_.end()) {
        responses_[pending.ticket] = cached->second;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        answered_ok_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const auto [it, inserted] = flight_index.try_emplace(std::move(key), flights.size());
    if (inserted) {
      Flight flight;
      flight.request = std::move(request).take();
      flight.key = it->first;
      flight.tickets.push_back(pending.ticket);
      flights.push_back(std::move(flight));
    } else {
      // Single flight: this request is satisfied by the computation already
      // scheduled for its key — no second campaign, no second encode.
      flights[it->second].tickets.push_back(pending.ticket);
      deduped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // One task per unique key; heavy keys (cold campaigns) steal-balance
  // against cheap ones (warm encodes) on the pool.
  std::vector<support::ThreadPool::Task> tasks;
  tasks.reserve(flights.size());
  for (Flight& flight : flights) {
    tasks.push_back([this, &flight](unsigned /*worker*/) {
      const auto start = std::chrono::steady_clock::now();
      const DeriveResponse response = serve(flight.request);
      flight.ok = response.status == ResponseStatus::kOk;
      flight.payload_bytes = response.payload.size();
      flight.response =
          std::make_shared<const std::string>(response.encode(flight.request.format));
      flight.wall_micros = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                                start)
              .count());
    });
  }
  if (!tasks.empty()) {
    const unsigned workers =
        config_.workers == 0 ? support::ThreadPool::hardware_workers() : config_.workers;
    support::ThreadPool pool(workers);
    pool.run(std::move(tasks));
  }

  // Fold in canonical flight order; every count and sketch sample below is a
  // pure function of the submission trace.
  for (Flight& flight : flights) {
    {
      std::lock_guard lock(responses_mutex_);
      for (const Ticket ticket : flight.tickets) responses_[ticket] = flight.response;
      if (flight.ok) response_cache_[flight.key] = flight.response;
    }
    const auto n = static_cast<std::uint64_t>(flight.tickets.size());
    if (flight.ok) {
      answered_ok_.fetch_add(n, std::memory_order_relaxed);
    } else {
      answered_error_.fetch_add(n, std::memory_order_relaxed);
    }
    std::lock_guard metrics(metrics_mutex_);
    if (flight.request.endpoint == Endpoint::kDerive) {
      derive_bytes_.add(flight.payload_bytes);
      derive_wall_micros_.add(flight.wall_micros);
    } else {
      bundle_bytes_.add(flight.payload_bytes);
      bundle_wall_micros_.add(flight.wall_micros);
    }
  }
}

std::shared_ptr<const std::string> DeriveServer::response(Ticket ticket) const {
  std::lock_guard lock(responses_mutex_);
  const auto it = responses_.find(ticket);
  return it == responses_.end() ? nullptr : it->second;
}

std::shared_ptr<const std::string> DeriveServer::take_response(Ticket ticket) {
  std::lock_guard lock(responses_mutex_);
  const auto it = responses_.find(ticket);
  if (it == responses_.end()) return nullptr;
  auto blob = std::move(it->second);
  responses_.erase(it);
  return blob;
}

std::uint64_t DeriveServer::pending() const {
  std::uint64_t n = 0;
  for (const auto& shard : queues_) {
    std::lock_guard lock(shard->mutex);
    n += shard->queue.size();
  }
  return n;
}

ServerStats DeriveServer::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load();
  stats.answered_ok = answered_ok_.load();
  stats.answered_error = answered_error_.load();
  stats.shed = shed_.load();
  stats.answered = stats.answered_ok + stats.answered_error;
  stats.pending = pending();
  stats.deduped = deduped_.load();
  stats.cache_hits = cache_hits_.load();
  std::lock_guard metrics(metrics_mutex_);
  stats.queue_depth_p50 = queue_depth_.quantile(0.50);
  stats.queue_depth_p95 = queue_depth_.quantile(0.95);
  stats.queue_depth_p99 = queue_depth_.quantile(0.99);
  stats.derive_bytes_p50 = derive_bytes_.quantile(0.50);
  stats.derive_bytes_p95 = derive_bytes_.quantile(0.95);
  stats.derive_bytes_p99 = derive_bytes_.quantile(0.99);
  stats.bundle_bytes_p50 = bundle_bytes_.quantile(0.50);
  stats.bundle_bytes_p95 = bundle_bytes_.quantile(0.95);
  stats.bundle_bytes_p99 = bundle_bytes_.quantile(0.99);
  return stats;
}

std::uint64_t DeriveServer::wall_latency_micros(Endpoint endpoint, double q) const {
  std::lock_guard metrics(metrics_mutex_);
  return endpoint == Endpoint::kDerive ? derive_wall_micros_.quantile(q)
                                       : bundle_wall_micros_.quantile(q);
}

std::string ServerStats::render() const {
  std::ostringstream out;
  out << "derive service summary\n";
  out << "  requests: " << submitted << " submitted, " << answered << " answered, " << shed
      << " shed, " << pending << " pending\n";
  out << "  responses: " << answered_ok << " ok, " << answered_error << " error\n";
  out << "  single-flight: " << deduped << " deduped, " << cache_hits << " response-cache hits\n";
  render_quantiles(out, "queue depth at admission", queue_depth_p50, queue_depth_p95,
                   queue_depth_p99);
  render_quantiles(out, "derive payload bytes", derive_bytes_p50, derive_bytes_p95,
                   derive_bytes_p99);
  render_quantiles(out, "bundle payload bytes", bundle_bytes_p50, bundle_bytes_p95,
                   bundle_bytes_p99);
  return out.str();
}

}  // namespace healers::server
