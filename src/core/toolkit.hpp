// The HEALERS toolkit facade — the operations the paper demonstrates:
//
//   §3.1 library-centric: list all libraries, list all functions defined in
//        a library, emit the XML declaration file describing each
//        function's prototype, derive the robust API by fault injection;
//   §3.2 application-centric: extract an executable's linked libraries and
//        undefined functions;
//   §2.3 wrapper generation: build robustness / security / profiling
//        wrappers (and their C source) and spawn processes with wrappers
//        preloaded.
//
// A Toolkit owns the installed shared libraries; every Process it spawns
// borrows them, so keep the Toolkit alive while processes run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "gen/composer.hpp"
#include "injector/injector.hpp"
#include "linker/executable.hpp"
#include "profile/collector.hpp"
#include "support/result.hpp"
#include "wrappers/wrappers.hpp"
#include "xml/xml.hpp"

namespace healers::core {

// One memoized campaign with the full cache key spelled out — the portable
// form of a derive-cache entry. The derivation server's persistent spec
// cache serializes these, so a fresh process (or a fresh server) can answer
// derive requests with zero probes. The fingerprint keeps entries honest:
// an updated library hashes differently and simply never hits.
struct CachedCampaign {
  std::string soname;
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  int variants = 0;
  std::uint64_t probe_step_budget = 0;
  std::uint64_t testbed_heap = 0;
  std::uint64_t testbed_stack = 0;
  injector::CampaignResult result;
};

// One executable's demand-driven surface scope for one library: the symbols
// its static closure (debloat::compute_reachability) can reach there. The
// derivation service scopes campaigns to the union of installed scopes, and
// persists them as HSSP1 spec-cache entries. The fingerprint keeps scopes
// honest the same way campaign entries are: a rebuilt library never matches.
struct SurfaceScope {
  std::string executable;
  std::string soname;
  std::uint64_t fingerprint = 0;
  std::vector<std::string> symbols;  // sorted

  [[nodiscard]] bool operator==(const SurfaceScope& other) const = default;
};

// One memoized repair policy with its full cache key — the HSRP1 persistent
// form. The key is identical to CachedCampaign's: a repair policy is a pure
// function of the campaign document (plus the library's man pages), so it is
// valid exactly when the campaign it derives from is.
struct CachedRepairPolicy {
  std::string soname;
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  int variants = 0;
  std::uint64_t probe_step_budget = 0;
  std::uint64_t testbed_heap = 0;
  std::uint64_t testbed_stack = 0;
  gen::RepairPolicy policy;
};

class Toolkit {
 public:
  // Installs the stock simulated libraries (libsimc, libsimio, libsimm).
  Toolkit();

  // Installs an additional library (takes ownership).
  void install_library(simlib::SharedLibrary lib);

  // --- demo §3.1: library-centric -----------------------------------------
  [[nodiscard]] std::vector<std::string> list_libraries() const;
  [[nodiscard]] Result<std::vector<std::string>> list_functions(const std::string& soname) const;
  // The XML declaration file: every function's parsed prototype.
  [[nodiscard]] Result<xml::Node> declaration_xml(const std::string& soname) const;
  // Fault-injection campaign deriving the library's robust API (Fig 2).
  //
  // Memoized: results are cached per (soname, library fingerprint, and the
  // config fields campaign output depends on — seed, variants, step budget,
  // testbed sizes). `jobs` and `snapshot_reset` are deliberately NOT part of
  // the key: the engine guarantees bit-identical results for any value of
  // either, so all of them share one cache slot. A repeated derive therefore
  // runs zero probes (observable via probes_executed()).
  //
  // Single-flight: when M threads race on one key, exactly one runs the
  // campaign; the others block on its completion and share the result, so
  // probes_executed() rises by one campaign's worth no matter how many
  // callers collide. Distinct keys still derive concurrently.
  [[nodiscard]] Result<injector::CampaignResult> derive_robust_api(
      const std::string& soname, injector::InjectorConfig config = {}) const;

  // Probes executed by all campaigns this toolkit has run; cache hits add
  // nothing. The handle for cache-effectiveness tests and benches.
  [[nodiscard]] std::uint64_t probes_executed() const noexcept {
    return probes_executed_.load(std::memory_order_relaxed);
  }
  // Probe cases synthesized from the subsumption lattice instead of executed
  // (DESIGN.md, "Subsumption pruning") across all campaigns.
  [[nodiscard]] std::uint64_t probes_implied() const noexcept {
    return probes_implied_.load(std::memory_order_relaxed);
  }

  // The cross-campaign implication-profile store every derive this toolkit
  // runs learns into and orders probes by. Shared so the derivation server
  // can persist it (HSIP1 entries in the spec-cache file) and preload a warm
  // fleet.
  [[nodiscard]] const std::shared_ptr<lattice::ImplicationProfileStore>&
  implication_profiles() const noexcept {
    return profiles_;
  }

  // Pristine testbed states currently cached for reuse across campaigns
  // (one per distinct machine shape). Test/bench handle.
  [[nodiscard]] std::size_t testbed_states_cached() const noexcept;

  // Derives the repair policy for `soname` from its (memoized) robust-API
  // campaign: derive_robust_api + gen::derive_repair_policy, memoized under
  // the same key. Warm fleets therefore ship repaired wrappers with zero
  // probes once either the campaign or the policy is cached.
  [[nodiscard]] Result<gen::RepairPolicy> derive_repair_policy(
      const std::string& soname, injector::InjectorConfig config = {}) const;

  // --- persistent spec cache (derivation service) ---------------------------
  // Every memoized campaign, with its key spelled out, in deterministic key
  // order — the derivation server's spec cache serializes this.
  [[nodiscard]] std::vector<CachedCampaign> export_campaigns() const;
  // Every memoized repair policy, same contract as export_campaigns (HSRP1).
  [[nodiscard]] std::vector<CachedRepairPolicy> export_repair_policies() const;
  // Preloads memoized repair policies; same admission rules as
  // import_campaigns. Returns the number of entries admitted.
  std::size_t import_repair_policies(std::vector<CachedRepairPolicy> entries) const;
  // Preloads memoized campaigns (e.g. parsed from a cache file). Entries for
  // libraries this toolkit does not have installed, or whose fingerprint no
  // longer matches the installed library, are skipped — they could never hit.
  // Returns the number of entries actually admitted.
  std::size_t import_campaigns(std::vector<CachedCampaign> entries) const;

  // --- demand-driven surface scopes (docs/debloat.md) -----------------------
  // Records which symbols of scope.soname one executable can reach. A zero
  // fingerprint is filled in from the installed library; a stale or unknown
  // library rejects the scope. Returns whether the scope was installed.
  bool install_surface_scope(SurfaceScope scope) const;
  // Every installed scope, sorted by (executable, soname) — the HSSP1
  // serialization order.
  [[nodiscard]] std::vector<SurfaceScope> export_surface_scopes() const;
  // Preloads scopes (e.g. parsed from a cache file); same admission rules as
  // install_surface_scope. Returns the number of entries admitted.
  std::size_t import_surface_scopes(std::vector<SurfaceScope> entries) const;
  // Union of every installed scope's symbols for `soname`, sorted. Empty
  // means no executable's scope mentions the library — derive unscoped.
  [[nodiscard]] std::vector<std::string> surface_scope_for(const std::string& soname) const;

  // --- demo §3.2: application-centric --------------------------------------
  [[nodiscard]] linker::LinkMap inspect(const linker::Executable& exe) const;

  // --- wrapper generation (§2.3) -------------------------------------------
  [[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> robustness_wrapper(
      const std::string& soname, const injector::CampaignResult& campaign) const;
  [[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> security_wrapper(
      const std::string& soname) const;
  [[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> profiling_wrapper(
      const std::string& soname, bool include_trace = false) const;
  [[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> repair_wrapper(
      const std::string& soname, const injector::CampaignResult& campaign) const;

  // The generated wrapper library's C source (Fig 3 per function).
  [[nodiscard]] Result<std::string> wrapper_source(
      const std::string& soname, const gen::WrapperBuilder& builder,
      const injector::CampaignResult* campaign = nullptr) const;

  // --- running applications -------------------------------------------------
  // Spawns the executable with the given wrappers preloaded (LD_PRELOAD
  // order: first wrapper sees calls first).
  [[nodiscard]] std::unique_ptr<linker::Process> spawn(
      const linker::Executable& exe, std::vector<linker::InterpositionPtr> preloads = {},
      mem::MachineConfig config = {}) const;

  [[nodiscard]] const linker::LibraryCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const simlib::SharedLibrary* library(const std::string& soname) const {
    return catalog_.find(soname);
  }

 private:
  // Everything a campaign's output is a function of, minus the library
  // content itself (covered by the fingerprint). `jobs`, `snapshot_reset`
  // and `prune` are deliberately absent: the engine guarantees bit-identical
  // results for any combination, so all of them share one cache slot.
  // The trailing element is the surface-scope digest: 0 for a whole-library
  // campaign, a hash of config.only_functions otherwise. Scoped campaigns
  // are partial documents, so they get their own slots and are never
  // exported to the portable spec cache.
  using CampaignKey = std::tuple<std::string,    // soname
                                 std::uint64_t,  // SharedLibrary::fingerprint()
                                 std::uint64_t,  // seed
                                 int,            // variants
                                 std::uint64_t,  // probe_step_budget
                                 std::uint64_t,  // testbed_heap
                                 std::uint64_t,  // testbed_stack
                                 std::uint64_t>; // surface-scope digest

  // One in-flight campaign: the first thread to miss the cache runs it, any
  // thread that arrives while it runs waits here and shares the outcome
  // (including failures — they are not cached, so a later call retries).
  struct Inflight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    Result<injector::CampaignResult> outcome{Error("campaign in flight")};
  };

  // A pristine TestbedState depends only on the catalog and the machine
  // shape — not on which library a campaign probes, the seed, or variants.
  // One cached state therefore serves every derive (and every concurrent
  // request in the derivation server): each campaign forks O(metadata)
  // shells from it instead of re-running setup. Invalidated wholesale by
  // install_library (the load set changed).
  using TestbedKey = std::tuple<std::uint64_t,   // probe_step_budget
                                std::uint64_t,   // testbed_heap
                                std::uint64_t>;  // testbed_stack

  std::vector<std::unique_ptr<simlib::SharedLibrary>> owned_;
  linker::LibraryCatalog catalog_;

  mutable std::mutex cache_mutex_;
  mutable std::map<CampaignKey, injector::CampaignResult> campaign_cache_;
  mutable std::map<CampaignKey, gen::RepairPolicy> repair_cache_;
  mutable std::map<CampaignKey, std::shared_ptr<Inflight>> inflight_;
  mutable std::map<TestbedKey, std::shared_ptr<const linker::TestbedState>> testbed_states_;
  // Installed surface scopes, keyed (executable, soname) — one scope per
  // executable per library, latest install wins.
  mutable std::map<std::pair<std::string, std::string>, SurfaceScope> surface_scopes_;
  mutable std::atomic<std::uint64_t> probes_executed_{0};
  mutable std::atomic<std::uint64_t> probes_implied_{0};
  std::shared_ptr<lattice::ImplicationProfileStore> profiles_ =
      std::make_shared<lattice::ImplicationProfileStore>();
};

}  // namespace healers::core
