#include "core/toolkit.hpp"

#include <algorithm>

#include "parser/header_parser.hpp"

namespace healers::core {
namespace {

// Digest of a surface scope's function list for the campaign-cache key:
// order-insensitive (the list is hashed sorted) and 0 exactly when unscoped.
std::uint64_t scope_digest(const std::vector<std::string>& names) {
  if (names.empty()) return 0;
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::string& name : sorted) {
    for (const char c : name) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= '\0';
    hash *= 0x100000001b3ULL;
  }
  return hash != 0 ? hash : 1;  // a scoped campaign never shares slot 0
}

}  // namespace

Toolkit::Toolkit() {
  install_library(simlib::build_libsimc());
  install_library(simlib::build_libsimio());
  install_library(simlib::build_libsimm());
}

void Toolkit::install_library(simlib::SharedLibrary lib) {
  owned_.push_back(std::make_unique<simlib::SharedLibrary>(std::move(lib)));
  catalog_.install(owned_.back().get());
  // The load set changed: every cached pristine state baked in the old
  // catalog and would fork testbeds missing the new library.
  std::lock_guard lock(cache_mutex_);
  testbed_states_.clear();
}

std::size_t Toolkit::testbed_states_cached() const noexcept {
  std::lock_guard lock(cache_mutex_);
  return testbed_states_.size();
}

std::vector<std::string> Toolkit::list_libraries() const { return catalog_.sonames(); }

Result<std::vector<std::string>> Toolkit::list_functions(const std::string& soname) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return lib->names();
}

Result<xml::Node> Toolkit::declaration_xml(const std::string& soname) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  // Parse the library's own header text — the toolkit reads prototypes the
  // way it would from a third-party library, not out of band.
  auto parsed = parser::parse_header(lib->header_text());
  if (!parsed.ok()) return parsed.error();

  xml::Node node("library");
  node.set_attr("name", lib->soname());
  node.set_attr("version", lib->version());
  node.set_attr("functions", std::to_string(parsed.value().functions.size()));
  for (const parser::FunctionProto& proto : parsed.value().functions) {
    xml::Node& fn = node.add_child("function");
    fn.set_attr("name", proto.name);
    fn.set_attr("returns", proto.return_type.to_string());
    if (proto.varargs) fn.set_attr("varargs", "1");
    fn.add_text_child("prototype", proto.to_declaration());
    for (std::size_t i = 0; i < proto.params.size(); ++i) {
      xml::Node& param = fn.add_child("param");
      param.set_attr("index", std::to_string(i + 1));
      param.set_attr("type", proto.params[i].type.to_string());
      if (!proto.params[i].name.empty()) param.set_attr("name", proto.params[i].name);
    }
  }
  return node;
}

Result<injector::CampaignResult> Toolkit::derive_robust_api(
    const std::string& soname, injector::InjectorConfig config) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  const CampaignKey key{soname,          lib->fingerprint(),       config.seed,
                        config.variants, config.probe_step_budget, config.testbed_heap,
                        config.testbed_stack, scope_digest(config.only_functions)};
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  {
    std::lock_guard lock(cache_mutex_);
    const auto it = campaign_cache_.find(key);
    if (it != campaign_cache_.end()) return it->second;
    auto [fit, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      fit->second = std::make_shared<Inflight>();
      leader = true;
    }
    flight = fit->second;
  }
  if (!leader) {
    // Another thread is already running this exact campaign: wait for it and
    // share its outcome instead of burning a second campaign's probes.
    std::unique_lock lock(flight->mutex);
    flight->done_cv.wait(lock, [&flight] { return flight->done; });
    return flight->outcome;
  }
  injector::FaultInjector injector(catalog_, config);
  // Thread the shared implication profiles through: this campaign is warmed
  // by every earlier derive, and what it learns warms the next.
  injector.set_profile_store(profiles_);
  const TestbedKey state_key{config.probe_step_budget, config.testbed_heap,
                             config.testbed_stack};
  {
    // Hand the injector the cached pristine state for this machine shape, if
    // any — the campaign then skips setup entirely and forks straight from
    // the shared image.
    std::lock_guard lock(cache_mutex_);
    const auto it = testbed_states_.find(state_key);
    if (it != testbed_states_.end()) injector.set_testbed_state(it->second);
  }
  auto campaign = injector.run_campaign(*lib);
  probes_executed_.fetch_add(injector.probes_executed(), std::memory_order_relaxed);
  probes_implied_.fetch_add(injector.probes_implied(), std::memory_order_relaxed);
  {
    std::lock_guard lock(cache_mutex_);
    if (campaign.ok()) campaign_cache_.insert_or_assign(key, campaign.value());
    inflight_.erase(key);  // failures are not cached; a later call retries
    // Remember the pristine state the campaign built (or keep the one it
    // adopted) so the next derive — any library, any seed — reuses it.
    if (auto state = injector.testbed_state()) {
      testbed_states_.insert_or_assign(state_key, std::move(state));
    }
  }
  {
    std::lock_guard lock(flight->mutex);
    flight->outcome = campaign;
    flight->done = true;
  }
  flight->done_cv.notify_all();
  return campaign;
}

Result<gen::RepairPolicy> Toolkit::derive_repair_policy(const std::string& soname,
                                                        injector::InjectorConfig config) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  const CampaignKey key{soname,          lib->fingerprint(),       config.seed,
                        config.variants, config.probe_step_budget, config.testbed_heap,
                        config.testbed_stack, scope_digest(config.only_functions)};
  {
    std::lock_guard lock(cache_mutex_);
    const auto it = repair_cache_.find(key);
    if (it != repair_cache_.end()) return it->second;
  }
  auto campaign = derive_robust_api(soname, config);
  if (!campaign.ok()) return campaign.error();
  auto policy = gen::derive_repair_policy(campaign.value(), *lib);
  if (!policy.ok()) return policy.error();
  std::lock_guard lock(cache_mutex_);
  repair_cache_.insert_or_assign(key, policy.value());
  return policy;
}

std::vector<CachedCampaign> Toolkit::export_campaigns() const {
  std::vector<CachedCampaign> out;
  std::lock_guard lock(cache_mutex_);
  out.reserve(campaign_cache_.size());
  for (const auto& [key, result] : campaign_cache_) {
    // Scoped campaigns are partial documents — meaningless without the
    // executable whose closure defined the scope — so only whole-library
    // entries are portable.
    if (std::get<7>(key) != 0) continue;
    CachedCampaign entry;
    entry.soname = std::get<0>(key);
    entry.fingerprint = std::get<1>(key);
    entry.seed = std::get<2>(key);
    entry.variants = std::get<3>(key);
    entry.probe_step_budget = std::get<4>(key);
    entry.testbed_heap = std::get<5>(key);
    entry.testbed_stack = std::get<6>(key);
    entry.result = result;
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t Toolkit::import_campaigns(std::vector<CachedCampaign> entries) const {
  std::size_t admitted = 0;
  for (CachedCampaign& entry : entries) {
    const simlib::SharedLibrary* lib = catalog_.find(entry.soname);
    if (lib == nullptr || lib->fingerprint() != entry.fingerprint) continue;
    const CampaignKey key{entry.soname,      entry.fingerprint, entry.seed,
                          entry.variants,    entry.probe_step_budget,
                          entry.testbed_heap, entry.testbed_stack, 0};
    std::lock_guard lock(cache_mutex_);
    campaign_cache_.insert_or_assign(key, std::move(entry.result));
    ++admitted;
  }
  return admitted;
}

std::vector<CachedRepairPolicy> Toolkit::export_repair_policies() const {
  std::vector<CachedRepairPolicy> out;
  std::lock_guard lock(cache_mutex_);
  out.reserve(repair_cache_.size());
  for (const auto& [key, policy] : repair_cache_) {
    if (std::get<7>(key) != 0) continue;  // scoped: not portable (see campaigns)
    CachedRepairPolicy entry;
    entry.soname = std::get<0>(key);
    entry.fingerprint = std::get<1>(key);
    entry.seed = std::get<2>(key);
    entry.variants = std::get<3>(key);
    entry.probe_step_budget = std::get<4>(key);
    entry.testbed_heap = std::get<5>(key);
    entry.testbed_stack = std::get<6>(key);
    entry.policy = policy;
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t Toolkit::import_repair_policies(std::vector<CachedRepairPolicy> entries) const {
  std::size_t admitted = 0;
  for (CachedRepairPolicy& entry : entries) {
    const simlib::SharedLibrary* lib = catalog_.find(entry.soname);
    if (lib == nullptr || lib->fingerprint() != entry.fingerprint) continue;
    const CampaignKey key{entry.soname,      entry.fingerprint, entry.seed,
                          entry.variants,    entry.probe_step_budget,
                          entry.testbed_heap, entry.testbed_stack, 0};
    std::lock_guard lock(cache_mutex_);
    repair_cache_.insert_or_assign(key, std::move(entry.policy));
    ++admitted;
  }
  return admitted;
}

bool Toolkit::install_surface_scope(SurfaceScope scope) const {
  const simlib::SharedLibrary* lib = catalog_.find(scope.soname);
  if (lib == nullptr) return false;
  if (scope.fingerprint == 0) scope.fingerprint = lib->fingerprint();
  if (scope.fingerprint != lib->fingerprint()) return false;
  std::sort(scope.symbols.begin(), scope.symbols.end());
  scope.symbols.erase(std::unique(scope.symbols.begin(), scope.symbols.end()),
                      scope.symbols.end());
  std::lock_guard lock(cache_mutex_);
  surface_scopes_.insert_or_assign({scope.executable, scope.soname}, std::move(scope));
  return true;
}

std::vector<SurfaceScope> Toolkit::export_surface_scopes() const {
  std::vector<SurfaceScope> out;
  std::lock_guard lock(cache_mutex_);
  out.reserve(surface_scopes_.size());
  for (const auto& [_, scope] : surface_scopes_) out.push_back(scope);
  return out;
}

std::size_t Toolkit::import_surface_scopes(std::vector<SurfaceScope> entries) const {
  std::size_t admitted = 0;
  for (SurfaceScope& entry : entries) {
    if (install_surface_scope(std::move(entry))) ++admitted;
  }
  return admitted;
}

std::vector<std::string> Toolkit::surface_scope_for(const std::string& soname) const {
  std::vector<std::string> out;
  std::lock_guard lock(cache_mutex_);
  for (const auto& [key, scope] : surface_scopes_) {
    if (key.second != soname) continue;
    out.insert(out.end(), scope.symbols.begin(), scope.symbols.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

linker::LinkMap Toolkit::inspect(const linker::Executable& exe) const {
  return linker::inspect_executable(exe, catalog_);
}

Result<std::shared_ptr<gen::ComposedWrapper>> Toolkit::robustness_wrapper(
    const std::string& soname, const injector::CampaignResult& campaign) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return wrappers::make_robustness_wrapper(*lib, campaign);
}

Result<std::shared_ptr<gen::ComposedWrapper>> Toolkit::security_wrapper(
    const std::string& soname) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return wrappers::make_security_wrapper(*lib);
}

Result<std::shared_ptr<gen::ComposedWrapper>> Toolkit::profiling_wrapper(
    const std::string& soname, bool include_trace) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return wrappers::make_profiling_wrapper(*lib, include_trace);
}

Result<std::shared_ptr<gen::ComposedWrapper>> Toolkit::repair_wrapper(
    const std::string& soname, const injector::CampaignResult& campaign) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return wrappers::make_repair_wrapper(*lib, campaign);
}

Result<std::string> Toolkit::wrapper_source(const std::string& soname,
                                            const gen::WrapperBuilder& builder,
                                            const injector::CampaignResult* campaign) const {
  const simlib::SharedLibrary* lib = catalog_.find(soname);
  if (lib == nullptr) return Error("no such library: " + soname);
  return builder.emit_library_source(*lib, campaign);
}

std::unique_ptr<linker::Process> Toolkit::spawn(const linker::Executable& exe,
                                                std::vector<linker::InterpositionPtr> preloads,
                                                mem::MachineConfig config) const {
  return linker::spawn(exe, catalog_, std::move(preloads), config);
}

}  // namespace healers::core
