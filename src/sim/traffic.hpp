// Composable fleet traffic models.
//
// Each simulated host is a resumable state machine: step() consumes one
// wake-up event and returns what the host emits now (profile documents,
// a crash dossier, a derive request) plus the delay until its next wake-up.
// All randomness comes from the host's own splitmix-seeded Rng, derived
// from (fleet seed, host index) alone — so a host's entire emission
// schedule is a pure function of those two numbers, independent of how
// hosts are partitioned into shards or how many real threads advance them.
//
// The models are the shapes a real telemetry fleet throws at a collector:
//
//   steady     — periodic check-ins with jitter (the baseline load)
//   diurnal    — check-in rate follows a triangle "day/night" wave
//   burst      — long quiet, then a rapid-fire run of documents
//   straggler  — rare check-ins that upload a small backlog at once
//   crash-loop — a wedged host: dossier after dossier, occasionally
//                asking the derivation service for a hardening bundle
//   mixed      — a fixed fleet-share blend of all five (the default)
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/engine.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"

namespace healers::sim {

enum class TrafficModel : std::uint8_t {
  kSteady = 0,
  kDiurnal = 1,
  kBurst = 2,
  kStraggler = 3,
  kCrashLoop = 4,
  kMixed = 5,
};

// Number of concrete (non-mixed) models, for per-model accounting arrays.
inline constexpr std::size_t kConcreteModels = 5;

[[nodiscard]] std::string_view to_string(TrafficModel model) noexcept;
// Parses a --traffic flag value ("steady", "diurnal", "burst", "straggler",
// "crashloop", "mixed").
[[nodiscard]] Result<TrafficModel> traffic_model_from_name(std::string_view name);

// Resolves kMixed to the concrete model of one host. The blend is a fixed
// fleet share by host index: 55% steady, 20% diurnal, 10% burst,
// 10% straggler, 5% crash-loop. Concrete models resolve to themselves.
[[nodiscard]] TrafficModel resolve_model(TrafficModel configured, std::uint32_t host) noexcept;

// One simulated host. POD-small on purpose: a million of these is ~24 MB.
struct HostTask {
  Rng rng;
  std::uint32_t index = 0;
  TrafficModel model = TrafficModel::kSteady;
  bool debloat = false;           // host runs demand-loaded: emits surface profiles
  std::uint16_t burst_left = 0;   // remaining documents in the current burst
  std::uint32_t emissions = 0;    // documents + requests emitted so far

  HostTask(std::uint64_t fleet_seed, std::uint32_t host, TrafficModel configured);
};

// What one wake-up produces, and when the host wants to wake again.
struct StepPlan {
  VirtualTime next_delay = 0;
  std::uint8_t profile_docs = 0;
  bool dossier = false;
  bool derive = false;
  bool surface = false;  // attach a surface-profile document (debloat hosts only)
};

// Offset of the host's first wake-up (spreads the fleet over the first
// base interval so virtual second 0 is not a thundering herd).
[[nodiscard]] VirtualTime initial_delay(HostTask& host);

// Advances the host's state machine by one wake-up at virtual time `now`.
[[nodiscard]] StepPlan step(HostTask& host, VirtualTime now);

}  // namespace healers::sim
