#include "sim/traffic.hpp"

#include <string>

namespace healers::sim {
namespace {

// Mean steady check-in interval; every other model is phrased in terms of it.
constexpr VirtualTime kBase = 20 * kMicrosPerVirtualSecond;
// The diurnal "day" — compressed so a 60-virtual-second run sees a full wave.
constexpr VirtualTime kDiurnalPeriod = 60 * kMicrosPerVirtualSecond;
// Document spacing inside a burst.
constexpr VirtualTime kBurstGap = 10'000;

}  // namespace

std::string_view to_string(TrafficModel model) noexcept {
  switch (model) {
    case TrafficModel::kSteady: return "steady";
    case TrafficModel::kDiurnal: return "diurnal";
    case TrafficModel::kBurst: return "burst";
    case TrafficModel::kStraggler: return "straggler";
    case TrafficModel::kCrashLoop: return "crash-loop";
    case TrafficModel::kMixed: return "mixed";
  }
  return "?";
}

Result<TrafficModel> traffic_model_from_name(std::string_view name) {
  if (name == "steady") return TrafficModel::kSteady;
  if (name == "diurnal") return TrafficModel::kDiurnal;
  if (name == "burst") return TrafficModel::kBurst;
  if (name == "straggler") return TrafficModel::kStraggler;
  if (name == "crashloop" || name == "crash-loop") return TrafficModel::kCrashLoop;
  if (name == "mixed") return TrafficModel::kMixed;
  return Error("unknown traffic model '" + std::string(name) +
               "' (expected steady|diurnal|burst|straggler|crashloop|mixed)");
}

TrafficModel resolve_model(TrafficModel configured, std::uint32_t host) noexcept {
  if (configured != TrafficModel::kMixed) return configured;
  // Fleet share by host index modulo 20: 11/20 steady, 4/20 diurnal,
  // 2/20 burst, 2/20 straggler, 1/20 crash-loop.
  const std::uint32_t slot = host % 20;
  if (slot < 11) return TrafficModel::kSteady;
  if (slot < 15) return TrafficModel::kDiurnal;
  if (slot < 17) return TrafficModel::kBurst;
  if (slot < 19) return TrafficModel::kStraggler;
  return TrafficModel::kCrashLoop;
}

HostTask::HostTask(std::uint64_t fleet_seed, std::uint32_t host, TrafficModel configured)
    // Splitmix seeding: consecutive host indices land in unrelated stream
    // positions, and the constant keeps sim streams disjoint from the other
    // Rng users of the same fleet seed (campaign probes, FleetSimulator).
    : rng((fleet_seed + 0x53494d31ULL) ^
          (static_cast<std::uint64_t>(host) * 0x9e3779b97f4a7c15ULL)),
      index(host),
      model(resolve_model(configured, host)) {}

VirtualTime initial_delay(HostTask& host) { return host.rng.below(kBase); }

StepPlan step(HostTask& host, VirtualTime now) {
  StepPlan plan;
  const bool first = host.emissions == 0;
  switch (host.model) {
    case TrafficModel::kSteady:
      plan.profile_docs = 1;
      plan.next_delay = kBase / 2 + host.rng.below(kBase);
      break;
    case TrafficModel::kDiurnal: {
      plan.profile_docs = 1;
      // Integer triangle wave over the period: the interval shrinks to
      // ~kBase/3 at the daily peak and relaxes to ~2*kBase in the trough.
      const VirtualTime half = kDiurnalPeriod / 2;
      const VirtualTime phase = now % kDiurnalPeriod;
      const VirtualTime tri = phase < half ? phase : kDiurnalPeriod - phase;
      const VirtualTime interval = 2 * kBase * half / (half + 4 * tri);
      plan.next_delay = interval / 2 + host.rng.below(interval);
      break;
    }
    case TrafficModel::kBurst:
      if (host.burst_left == 0) {
        host.burst_left = static_cast<std::uint16_t>(8 + host.rng.below(25));
      }
      plan.profile_docs = 1;
      --host.burst_left;
      plan.next_delay =
          host.burst_left > 0 ? kBurstGap : 2 * kBase + host.rng.below(4 * kBase);
      break;
    case TrafficModel::kStraggler:
      // A rare check-in flushes a small backlog in one wake-up.
      plan.profile_docs = static_cast<std::uint8_t>(1 + host.rng.below(3));
      plan.next_delay = 3 * kBase + host.rng.below(6 * kBase);
      break;
    case TrafficModel::kCrashLoop:
      plan.dossier = true;
      plan.derive = host.rng.below(8) == 0;
      plan.profile_docs = host.rng.below(4) == 0 ? 1 : 0;
      plan.next_delay = kBase / 8 + host.rng.below(kBase / 4);
      break;
    case TrafficModel::kMixed:
      // Resolved to a concrete model at construction; unreachable.
      plan.next_delay = kBase;
      break;
  }
  // A sliver of every model's first wake-ups asks the derivation service
  // for the robust API (a fresh install checking in).
  if (first && !plan.derive) plan.derive = host.rng.below(64) == 0;
  // Demand-loaded hosts piggyback a surface profile on ~1/12 of their
  // check-ins. The draw happens only when debloat is on, so a non-debloat
  // fleet's emission stream is bit-for-bit what it was before the flag
  // existed.
  if (host.debloat && plan.profile_docs > 0) plan.surface = host.rng.below(12) == 0;
  return plan;
}

}  // namespace healers::sim
