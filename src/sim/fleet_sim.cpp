#include "sim/fleet_sim.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "debloat/surface.hpp"
#include "fleet/sketch.hpp"
#include "fleet/wire.hpp"
#include "incident/dossier.hpp"
#include "server/protocol.hpp"
#include "simlib/observer.hpp"
#include "support/thread_pool.hpp"

namespace healers::sim {
namespace {

enum class EmissionKind : std::uint8_t { kProfile, kDossier, kSurface, kDerive };

// One encoded payload waiting for the serial delivery phase. `seq` is the
// host's emission counter at emission time, the tie-break that makes the
// merged delivery order a total order.
struct Emission {
  VirtualTime at = 0;
  std::uint32_t host = 0;
  std::uint32_t seq = 0;
  EmissionKind kind = EmissionKind::kProfile;
  std::string payload;
};

// Per-shard simulation state: a contiguous slice of the fleet, its event
// heap, and the out-buffer the parallel advance phase appends to.
struct ShardState {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::vector<HostTask> tasks;
  EventQueue queue;
  std::vector<Emission> out;
  std::uint64_t events = 0;
  // Host -> shard reduction, merged into the global stats at the end.
  fleet::CycleSketch per_host;
  std::array<std::uint64_t, kConcreteModels> model_hosts{};
};

// The symbols sim hosts report against, sorted (documents pick a contiguous
// run so the rendered fleet summary stays compact).
constexpr std::array<std::string_view, 8> kSymbols = {
    "atoi", "memcpy", "qsort", "strchr", "strcpy", "strlen", "toupper", "wctrans"};

void put_host_name(std::string& out, std::uint32_t host) {
  char name[12];
  std::snprintf(name, sizeof name, "h%07u", host);
  fleet::codec::put_str(out, name);
}

// Builds one "HFB1" binary profile document straight from the host's Rng —
// no ProfileReport object, no XML: at a million hosts the encode path IS the
// generator's hot loop.
std::string make_profile_doc(HostTask& host) {
  std::string out;
  out.reserve(192);
  out += fleet::kBinaryMagic;
  put_host_name(out, host.index);
  fleet::codec::put_str(out, "sim-wrapper");
  const auto nfn = static_cast<std::uint32_t>(2 + host.rng.below(3));
  const std::size_t start = host.rng.below(kSymbols.size() - nfn + 1);
  fleet::codec::put_u32(out, nfn);
  std::uint64_t global_einval = 0;
  for (std::uint32_t i = 0; i < nfn; ++i) {
    const std::string_view symbol = kSymbols[start + i];
    const std::uint64_t calls = 1 + host.rng.below(64);
    fleet::codec::put_str(out, symbol);
    fleet::codec::put_u64(out, calls);
    fleet::codec::put_u64(out, calls * (20 + host.rng.below(40)));  // cycles
    fleet::codec::put_u64(out, host.rng.below(16) == 0 ? 1 : 0);    // contained
    // Only wctrans reports failures here — EINVAL on unknown mappings, the
    // paper's own Fig 3 example of an errno histogram.
    if (symbol == "wctrans" && host.rng.below(4) == 0) {
      const std::uint64_t count = 1 + host.rng.below(3);
      fleet::codec::put_u32(out, 1);
      fleet::codec::put_u32(out, 22);  // EINVAL
      fleet::codec::put_u64(out, count);
      global_einval += count;
    } else {
      fleet::codec::put_u32(out, 0);
    }
  }
  if (global_einval > 0) {
    fleet::codec::put_u32(out, 1);
    fleet::codec::put_u32(out, 22);
    fleet::codec::put_u64(out, global_einval);
  } else {
    fleet::codec::put_u32(out, 0);
  }
  return out;
}

// A minimal crash dossier: the two security-wrapper detectors a wedged host
// keeps tripping, encoded in the compact "HDB1" wire form.
std::string make_dossier_doc(HostTask& host) {
  incident::Dossier dossier;
  {
    char name[12];
    std::snprintf(name, sizeof name, "h%07u", host.index);
    dossier.process = name;
  }
  const bool heap = host.rng.below(2) == 0;
  dossier.detector =
      heap ? simlib::DetectionKind::kHeapSmash : simlib::DetectionKind::kStackSmash;
  dossier.symbol = heap ? "memcpy" : "strcpy";
  dossier.detail = heap ? "heap canary mismatch" : "stack bound violation";
  dossier.seq = 1 + host.rng.below(512);
  dossier.tick = dossier.seq * 7;
  dossier.cycles = dossier.seq * 90;
  dossier.fault_addr = 0x20000 + host.rng.below(0x1000);
  return fleet::encode_dossier_binary(dossier);
}

// A surface profile from a demand-loaded host, encoded in the compact
// "HSP1" wire form. The netd closure (docs/debloat.md) is the reachable
// set; how much of it the host has actually touched — and whether a drifted
// caller tripped the surface-violation trap — comes from the host's Rng, so
// the document is a pure function of (seed, host index) like every other
// emission.
std::string make_surface_doc(HostTask& host) {
  static constexpr std::array<std::string_view, 6> kReachable = {
      "free", "malloc", "memcpy", "puts", "strcpy", "strlen"};
  debloat::SurfaceProfile profile;
  {
    char name[12];
    std::snprintf(name, sizeof name, "h%07u", host.index);
    profile.host = name;
  }
  profile.executable = "netd";
  profile.exported = 90;
  profile.reachable = kReachable.size();
  for (const std::string_view symbol : kReachable) {
    profile.reachable_symbols.emplace_back(symbol);
  }
  const auto touched = 3 + host.rng.below(4);  // 3..6 of the closure exercised
  profile.touched = touched;
  for (std::uint64_t i = 0; i < touched; ++i) {
    profile.touched_symbols.emplace_back(kReachable[i]);
  }
  if (host.rng.below(16) == 0) {  // a drifted caller hit the load barrier
    profile.trapped = 1;
    profile.trapped_symbols.emplace_back("rand");
  }
  profile.resident_pages = touched;
  profile.total_pages = profile.exported;
  return fleet::encode_surface_binary(profile);
}

// A derive request against the stock libraries, pinned to a tiny campaign
// (seed 21, variants 1) so the server's single-flight + response cache keep
// the whole fleet's curiosity down to a handful of real campaigns.
std::string make_derive_request(HostTask& host) {
  server::DeriveRequest request;
  const std::uint64_t pick = host.rng.below(8);
  request.soname = pick < 5   ? "libsimm.so.1"
                   : pick < 7 ? "libsimio.so.1"
                              : "libsimc.so.1";
  request.seed = 21;
  request.variants = 1;
  request.format = server::WireFormat::kBinary;
  if (pick == 6) {
    request.endpoint = server::Endpoint::kBundle;
    request.bundle = server::BundleKind::kSecurity;
  }
  return request.encode();
}

// Classifies a response blob by status without decoding payloads: binary
// responses carry the status word at a fixed offset; XML envelopes (sheds,
// pre-decode errors) are parsed once per distinct blob — responses are
// shared immutable strings, so memoizing by blob identity collapses a
// million lookups to one per unique response.
class ResponseClassifier {
 public:
  server::ResponseStatus classify(const std::shared_ptr<const std::string>& blob) {
    const std::string& bytes = *blob;
    if (bytes.size() >= 8 && std::string_view(bytes).substr(0, 4) == server::kResponseMagic) {
      const auto b = reinterpret_cast<const unsigned char*>(bytes.data() + 4);
      const std::uint32_t raw = static_cast<std::uint32_t>(b[0]) |
                                static_cast<std::uint32_t>(b[1]) << 8 |
                                static_cast<std::uint32_t>(b[2]) << 16 |
                                static_cast<std::uint32_t>(b[3]) << 24;
      return static_cast<server::ResponseStatus>(raw);
    }
    const auto [it, inserted] = memo_.try_emplace(blob.get(), server::ResponseStatus::kError);
    if (inserted) {
      auto decoded = server::DeriveResponse::decode(bytes);
      if (decoded.ok()) it->second = decoded.value().status;
    }
    return it->second;
  }

 private:
  std::map<const std::string*, server::ResponseStatus> memo_;
};

}  // namespace

FleetSim::FleetSim(const core::Toolkit& toolkit, SimConfig config) : config_(config) {
  if (config_.hosts == 0) config_.hosts = 1;
  if (config_.shards == 0) config_.shards = 1;
  config_.shards = std::min(config_.shards, config_.hosts);
  if (config_.window == 0) config_.window = kMicrosPerVirtualSecond;
  collector_ = std::make_unique<fleet::FleetCollector>(config_.collector);
  server_ = std::make_unique<server::DeriveServer>(toolkit, config_.server);
}

SimStats FleetSim::run() {
  const VirtualTime horizon = config_.virtual_seconds * kMicrosPerVirtualSecond;
  const std::uint32_t hosts = config_.hosts;
  const unsigned nshards = config_.shards;
  const unsigned jobs =
      config_.jobs == 0 ? support::ThreadPool::hardware_workers() : config_.jobs;
  support::ThreadPool pool(std::max(1u, std::min(jobs, nshards)));

  // Partition the fleet into contiguous slices and seed every host's first
  // wake-up, in parallel: HostTask construction touches only its own slice.
  std::vector<ShardState> shards(nshards);
  const std::uint32_t per = (hosts + nshards - 1) / nshards;
  {
    std::vector<support::ThreadPool::Task> tasks;
    tasks.reserve(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
      shards[s].lo = std::min(s * per, hosts);
      shards[s].hi = std::min(shards[s].lo + per, hosts);
      tasks.push_back([this, &shards, s](unsigned /*worker*/) {
        ShardState& shard = shards[s];
        shard.tasks.reserve(shard.hi - shard.lo);
        shard.queue.reserve(shard.hi - shard.lo);
        for (std::uint32_t host = shard.lo; host < shard.hi; ++host) {
          shard.tasks.emplace_back(config_.seed, host, config_.traffic);
          shard.tasks.back().debloat = config_.debloat;
          shard.queue.push(Event{initial_delay(shard.tasks.back()), host});
        }
      });
    }
    pool.run(std::move(tasks));
  }

  SimStats stats;
  stats.hosts = hosts;
  stats.virtual_seconds = config_.virtual_seconds;
  stats.traffic = config_.traffic;
  stats.sim_shards = nshards;

  std::vector<server::DeriveServer::Ticket> tickets;
  std::vector<Emission*> order;
  ResponseClassifier classifier;

  for (VirtualTime wstart = 0; wstart < horizon; wstart += config_.window) {
    const VirtualTime wend = std::min(wstart + config_.window, horizon);

    // Parallel advance: each shard drains its heap up to the window edge
    // into its private out-buffer. No shared state is touched.
    {
      std::vector<support::ThreadPool::Task> tasks;
      tasks.reserve(nshards);
      for (unsigned s = 0; s < nshards; ++s) {
        tasks.push_back([&shards, s, wend, horizon](unsigned /*worker*/) {
          ShardState& shard = shards[s];
          while (!shard.queue.empty() && shard.queue.top().at < wend) {
            const Event event = shard.queue.pop();
            HostTask& task = shard.tasks[event.host - shard.lo];
            ++shard.events;
            const StepPlan plan = step(task, event.at);
            for (std::uint8_t d = 0; d < plan.profile_docs; ++d) {
              shard.out.push_back(Emission{event.at, event.host, task.emissions++,
                                           EmissionKind::kProfile, make_profile_doc(task)});
            }
            if (plan.dossier) {
              shard.out.push_back(Emission{event.at, event.host, task.emissions++,
                                           EmissionKind::kDossier, make_dossier_doc(task)});
            }
            if (plan.surface) {
              shard.out.push_back(Emission{event.at, event.host, task.emissions++,
                                           EmissionKind::kSurface, make_surface_doc(task)});
            }
            if (plan.derive) {
              shard.out.push_back(Emission{event.at, event.host, task.emissions++,
                                           EmissionKind::kDerive, make_derive_request(task)});
            }
            const VirtualTime next = event.at + std::max<VirtualTime>(plan.next_delay, 1);
            if (next < horizon) shard.queue.push(Event{next, event.host});
          }
        });
      }
      pool.run(std::move(tasks));
    }

    // Serial merged delivery in (at, host, seq) order — the total order that
    // erases both the shard partition and the thread interleaving.
    order.clear();
    {
      std::size_t total = 0;
      for (ShardState& shard : shards) total += shard.out.size();
      order.reserve(total);
    }
    for (ShardState& shard : shards) {
      for (Emission& emission : shard.out) order.push_back(&emission);
    }
    std::sort(order.begin(), order.end(), [](const Emission* a, const Emission* b) {
      if (a->at != b->at) return a->at < b->at;
      if (a->host != b->host) return a->host < b->host;
      return a->seq < b->seq;
    });

    tickets.clear();
    for (Emission* emission : order) {
      ++stats.emissions;
      stats.payload_bytes += emission->payload.size();
      switch (emission->kind) {
        case EmissionKind::kProfile:
          ++stats.profile_docs;
          collector_->submit(std::move(emission->payload));
          break;
        case EmissionKind::kDossier:
          ++stats.dossier_docs;
          collector_->submit(std::move(emission->payload));
          break;
        case EmissionKind::kSurface:
          ++stats.surface_docs;
          collector_->submit(std::move(emission->payload));
          break;
        case EmissionKind::kDerive:
          ++stats.derive_requests;
          tickets.push_back(server_->submit(std::move(emission->payload)));
          break;
      }
    }
    for (ShardState& shard : shards) shard.out.clear();

    collector_->flush();
    server_->drain();

    // Retire this window's derive tickets; take_response keeps the server's
    // response table bounded by one window's requests, not the whole run's.
    for (const auto ticket : tickets) {
      const auto response = server_->take_response(ticket);
      if (!response) {
        ++stats.responses_error;
        continue;
      }
      switch (classifier.classify(response)) {
        case server::ResponseStatus::kOk: ++stats.responses_ok; break;
        case server::ResponseStatus::kError: ++stats.responses_error; break;
        case server::ResponseStatus::kShed: ++stats.responses_shed; break;
      }
    }
  }

  // Hierarchical reduction: hosts fold into their shard (in parallel), the
  // shards fold into the global stats (serially, commutative adds only).
  {
    std::vector<support::ThreadPool::Task> tasks;
    tasks.reserve(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
      tasks.push_back([&shards, s](unsigned /*worker*/) {
        ShardState& shard = shards[s];
        for (const HostTask& task : shard.tasks) {
          shard.per_host.add(task.emissions);
          ++shard.model_hosts[static_cast<std::size_t>(task.model)];
        }
      });
    }
    pool.run(std::move(tasks));
  }
  fleet::CycleSketch per_host;
  for (const ShardState& shard : shards) {
    stats.events += shard.events;
    per_host.merge(shard.per_host);
    for (std::size_t m = 0; m < kConcreteModels; ++m) {
      stats.hosts_by_model[m] += shard.model_hosts[m];
    }
  }
  stats.emissions_per_host_p50 = per_host.quantile(0.50);
  stats.emissions_per_host_p95 = per_host.quantile(0.95);
  stats.emissions_per_host_p99 = per_host.quantile(0.99);

  stats_ = stats;
  return stats;
}

std::string SimStats::render() const {
  std::ostringstream out;
  // Deliberately no sim-shard or jobs echo here: the summary must be
  // byte-identical across BOTH, so only trace-determining config appears.
  out << "fleet simulation summary\n";
  out << "  fleet: " << hosts << " hosts, " << virtual_seconds
      << " virtual seconds, traffic " << to_string(traffic) << "\n";
  out << "  hosts by model:";
  for (std::size_t m = 0; m < kConcreteModels; ++m) {
    if (hosts_by_model[m] == 0) continue;
    out << " " << to_string(static_cast<TrafficModel>(m)) << "=" << hosts_by_model[m];
  }
  out << "\n";
  out << "  events: " << events << " host wake-ups, " << emissions << " emissions ("
      << profile_docs << " profile docs, " << dossier_docs << " dossiers, ";
  if (surface_docs > 0) out << surface_docs << " surface profiles, ";
  out << derive_requests << " derive requests), " << payload_bytes << " payload bytes\n";
  out << "  emissions per host: p50=" << emissions_per_host_p50
      << " p95=" << emissions_per_host_p95 << " p99=" << emissions_per_host_p99 << "\n";
  out << "  derive responses: " << responses_ok << " ok, " << responses_error << " error, "
      << responses_shed << " shed\n";
  return out.str();
}

std::string FleetSim::render_global_summary() const {
  return stats_.render() + collector_->render_summary() + server_->render_summary();
}

}  // namespace healers::sim
