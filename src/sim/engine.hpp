// Virtual-time discrete-event engine (ROADMAP: "heavy traffic from millions
// of users").
//
// Real threads cannot model a million hosts — at fleet scale a host must be
// a cheap resumable task woken by a scheduler, not an OS thread. This engine
// supplies the two primitives the fleet simulator builds on:
//
//   * a virtual clock (microseconds, std::uint64_t) that advances only when
//     events fire — simulating 60 virtual seconds of a quiet fleet costs
//     exactly as much as the events in it, nothing more;
//   * a binary min-heap event queue keyed (at, host). Keys are unique (a
//     host has at most one scheduled wake-up), so pop order is a total
//     order determined by the keys alone — never by insertion order, heap
//     layout, or real-thread interleaving. That property is load-bearing:
//     it is the bottom layer of the byte-reproducibility guarantee
//     (same seed => same run, regardless of --jobs).
//
// The heap is hand-rolled rather than std::push_heap/pop_heap so the
// structure is self-contained and the determinism argument stays local:
// sift_up/sift_down only ever compare (at, host) pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace healers::sim {

// Microseconds on the simulation's virtual clock.
using VirtualTime = std::uint64_t;

inline constexpr VirtualTime kMicrosPerVirtualSecond = 1'000'000;

// One scheduled host wake-up.
struct Event {
  VirtualTime at = 0;
  std::uint32_t host = 0;  // global host index

  [[nodiscard]] friend constexpr bool operator<(const Event& a, const Event& b) noexcept {
    return a.at != b.at ? a.at < b.at : a.host < b.host;
  }
  [[nodiscard]] friend constexpr bool operator==(const Event& a, const Event& b) noexcept {
    return a.at == b.at && a.host == b.host;
  }
};

// Binary min-heap of events: top() is the earliest (at, host) pair.
class EventQueue {
 public:
  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }

  void push(Event event) {
    heap_.push_back(event);
    sift_up(heap_.size() - 1);
  }

  Event pop() {
    const Event first = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return first;
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i] < heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t least = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      if (left < n && heap_[left] < heap_[least]) least = left;
      if (right < n && heap_[right] < heap_[least]) least = right;
      if (least == i) return;
      std::swap(heap_[i], heap_[least]);
      i = least;
    }
  }

  std::vector<Event> heap_;
};

}  // namespace healers::sim
