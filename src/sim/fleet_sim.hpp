// The virtual-time fleet simulator: a million hosts driving the REAL serve
// path (fleet::FleetCollector ingest + server::DeriveServer admission).
//
// Execution is the ssc group-scheduler shape — lookahead windows with
// parallel advance and serial merged delivery:
//
//   per window [w, w+1s):
//     advance   each sim shard's event heap in parallel (one task per
//               shard on a support::ThreadPool); hosts step their state
//               machines and append emissions to the shard's out-buffer
//     merge     all out-buffers, sorted by (virtual time, host, seq) —
//               a total order independent of shard partition and thread
//               count
//     deliver   serially into the real FleetCollector / DeriveServer,
//               then flush()/drain() and retire derive tickets
//
// Because every host's emissions are a pure function of (seed, host index)
// and delivery order is the sorted merge, the whole run — stats, collector
// summary, server summary — is byte-reproducible for a given seed at ANY
// --jobs and ANY sim shard count. Tests byte-compare exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "server/derive_server.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"

namespace healers::sim {

struct SimConfig {
  std::uint32_t hosts = 100'000;
  std::uint64_t virtual_seconds = 60;
  std::uint64_t seed = 2003;
  TrafficModel traffic = TrafficModel::kMixed;
  // Hosts run demand-loaded and attach surface-profile documents to a slice
  // of their check-ins (the --debloat simulate flag; docs/debloat.md).
  bool debloat = false;
  unsigned shards = 8;  // sim shards (host partitions), NOT collector shards
  unsigned jobs = 1;    // real threads advancing shards; 0 = all cores
  // Lookahead window: emissions inside one window are merged and delivered
  // together; flush()/drain() run at every window boundary.
  VirtualTime window = kMicrosPerVirtualSecond;
  // Downstream services. Defaults are sized for large fleets; tests shrink
  // the capacities to force drops and sheds on purpose.
  fleet::CollectorConfig collector{
      .shards = 4, .queue_capacity = 65536, .batch_size = 256, .workers = 0};
  server::ServerConfig server{.shards = 2, .queue_capacity = 256, .workers = 0};
};

// Global counters of one run. Every field is trace-determined: fixed
// (seed, hosts, virtual_seconds, traffic, window) => identical stats.
struct SimStats {
  std::uint64_t hosts = 0;
  std::uint64_t virtual_seconds = 0;
  TrafficModel traffic = TrafficModel::kMixed;
  unsigned sim_shards = 0;
  std::uint64_t events = 0;     // host wake-ups processed
  std::uint64_t emissions = 0;  // documents + requests delivered downstream
  std::uint64_t profile_docs = 0;
  std::uint64_t dossier_docs = 0;
  std::uint64_t surface_docs = 0;
  std::uint64_t derive_requests = 0;
  std::uint64_t payload_bytes = 0;  // wire bytes pushed into the services
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t responses_shed = 0;
  std::uint64_t hosts_by_model[kConcreteModels] = {};
  std::uint64_t emissions_per_host_p50 = 0;
  std::uint64_t emissions_per_host_p95 = 0;
  std::uint64_t emissions_per_host_p99 = 0;

  // Deterministic rendering — part of the byte-compare surface.
  [[nodiscard]] std::string render() const;
};

class FleetSim {
 public:
  // The toolkit backs the DeriveServer (libraries + campaign engine); keep
  // it alive while the simulator runs.
  FleetSim(const core::Toolkit& toolkit, SimConfig config);

  // Runs the whole simulation to the virtual horizon and returns the global
  // stats (also retained for render_global_summary()). Call once.
  SimStats run();

  [[nodiscard]] const fleet::FleetCollector& collector() const noexcept { return *collector_; }
  [[nodiscard]] const server::DeriveServer& server() const noexcept { return *server_; }

  // Sim stats + collector summary + server summary, concatenated — the
  // hierarchical host -> shard -> global surface that must be byte-identical
  // across --jobs 1/4/16 and any sim shard count.
  [[nodiscard]] std::string render_global_summary() const;

 private:
  SimConfig config_;
  std::unique_ptr<fleet::FleetCollector> collector_;
  std::unique_ptr<server::DeriveServer> server_;
  SimStats stats_;
};

}  // namespace healers::sim
