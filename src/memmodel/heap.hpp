// Simulated chunked heap (dlmalloc-style, pre-safe-unlink era).
//
// The heap lives inside ONE arena region of the address space, with chunk
// headers stored inline in simulated memory. This is load-bearing for the
// paper's security demo (§3.4): a string overflow from one allocation runs
// silently into the next chunk's header (no fault — the arena is uniformly
// writable), and a subsequent free() of the victim's neighbour executes the
// classic *unsafe unlink*, handing the attacker an arbitrary 8-byte write.
// The HEALERS security wrapper must detect the corruption (via canaries it
// plants itself) *before* free() reaches the unlink.
//
// Chunk layout (all offsets in simulated memory):
//   +0   u64  size_and_flags   total chunk size incl. header; bit0 = in-use
//   +8   u64  prev_size        size of the previous chunk (unused by the
//                              allocator logic here, kept for fidelity)
//   +16  ...  user data        (free chunks: +16 = fd, +24 = bk)
//
// The free list is doubly linked through fd/bk *in simulated memory*, with a
// sentinel bin at the arena base — so unlink() is two stores through
// attacker-influencable pointers, exactly like the historical exploit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memmodel/addr_space.hpp"

namespace healers::mem {

struct HeapStats {
  std::uint64_t allocations = 0;     // successful mallocs over lifetime
  std::uint64_t frees = 0;           // successful frees over lifetime
  std::uint64_t failed_allocs = 0;   // mallocs that returned NULL
  std::uint64_t bytes_in_use = 0;    // user bytes currently allocated
  std::uint64_t chunks_in_use = 0;   // live allocations
};

// Snapshot of one chunk, for tests and the overflow demo's narration.
struct ChunkInfo {
  Addr header = 0;       // address of the chunk header
  Addr user = 0;         // header + kHeaderSize
  std::uint64_t size = 0;  // total chunk size incl. header
  bool in_use = false;
};

class Heap {
 public:
  static constexpr std::uint64_t kHeaderSize = 16;
  static constexpr std::uint64_t kAlign = 16;
  // Smallest chunk: header + room for fd/bk when free.
  static constexpr std::uint64_t kMinChunk = kHeaderSize + 16;

  // Carves the heap out of `space` as a fresh arena region.
  Heap(AddressSpace& space, std::uint64_t arena_size, std::string label = "heap");

  // Enables the post-2004 "safe unlinking" integrity check
  // (fd->bk == chunk && bk->fd == chunk, else abort) — the allocator-side
  // mitigation that later glibc shipped. Off by default: the paper's
  // wrapper-based defence targets the pre-hardening allocator, and the
  // ablation bench compares the two.
  void set_safe_unlink(bool enabled) noexcept { safe_unlink_ = enabled; }
  [[nodiscard]] bool safe_unlink() const noexcept { return safe_unlink_; }

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Returns the user address, or 0 (simulated NULL) when the arena cannot
  // satisfy the request. malloc(0) returns a unique minimal allocation, as
  // glibc does.
  [[nodiscard]] Addr malloc(std::uint64_t size);

  // free(0) is a no-op. Freeing a pointer that is not a live user address
  // raises SimAbort (glibc's "invalid pointer" abort). Freeing a chunk whose
  // neighbour's header was corrupted into a fake free chunk executes the
  // unsafe unlink — the attack primitive.
  void free(Addr user);

  // realloc with the usual contract: realloc(0, n) == malloc(n),
  // realloc(p, 0) frees and returns 0.
  [[nodiscard]] Addr realloc(Addr user, std::uint64_t size);

  // Usable user bytes of a live allocation (chunk size - header).
  [[nodiscard]] std::uint64_t usable_size(Addr user) const;

  // True iff `user` is the user address of a live (in-use) chunk.
  [[nodiscard]] bool is_live(Addr user) const noexcept;

  // Allocator bookkeeping snapshot. The chunk headers and free list live in
  // simulated memory, so a heap restore only makes sense together with an
  // AddressSpace restore covering the arena (Machine::restore does both).
  struct Snapshot {
    HeapStats stats;
    bool safe_unlink = false;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{stats_, safe_unlink_};
  }
  void restore(const Snapshot& snap) noexcept {
    stats_ = snap.stats;
    safe_unlink_ = snap.safe_unlink;
  }

  [[nodiscard]] const HeapStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Addr arena_base() const noexcept { return arena_base_; }
  [[nodiscard]] std::uint64_t arena_size() const noexcept { return arena_size_; }

  // Walks the chunk chain from the arena start. Stops (and truncates) when a
  // header is corrupt — callers use this to *observe* corruption in demos.
  [[nodiscard]] std::vector<ChunkInfo> chunks() const;

  // Integrity check used by tests: every header reachable, sizes sum to the
  // arena, free chunks on the list exactly once. Returns a human-readable
  // problem description, or empty when consistent.
  [[nodiscard]] std::string check_integrity() const;

 private:
  [[nodiscard]] std::uint64_t chunk_size(Addr header) const;
  [[nodiscard]] bool chunk_in_use(Addr header) const;
  void set_chunk(Addr header, std::uint64_t size, bool in_use);

  // Free-list operations (all through simulated memory).
  void list_insert(Addr header);  // push after the bin sentinel
  void unlink(Addr header);       // the unsafe unlink: no integrity checks

  AddressSpace& space_;
  Addr arena_base_ = 0;
  std::uint64_t arena_size_ = 0;
  Addr bin_ = 0;        // sentinel pseudo-chunk address
  Addr first_chunk_ = 0;
  HeapStats stats_;
  bool safe_unlink_ = false;
};

}  // namespace healers::mem
