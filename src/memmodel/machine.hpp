// The simulated machine: one address space + heap + stack + the three
// oracles the paper's fault-injection driver relied on, made deterministic:
//
//   * crash oracle  — AccessFault from the address space (SIGSEGV analogue),
//   * hang oracle   — a step budget; library loops call tick() per unit of
//                     work and SimHang fires when the budget is exhausted
//                     (the driver's watchdog timeout analogue),
//   * hijack oracle — a simulated GOT of named function-pointer slots; an
//                     indirect call through a slot whose value no longer
//                     names registered code raises ControlFlowHijack (the
//                     "attacker got a shell" outcome of demo §3.4).
//
// It also carries the per-process errno cell and a virtual cycle counter
// (the rdtsc analogue read by the profiling micro-generator, Fig 3).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "memmodel/addr_space.hpp"
#include "memmodel/heap.hpp"
#include "memmodel/stack.hpp"

namespace healers::mem {

struct MachineConfig {
  std::uint64_t heap_size = 1 << 20;   // 1 MiB arena
  std::uint64_t stack_size = 64 << 10; // 64 KiB
  std::uint64_t step_budget = 10'000'000;  // SimHang beyond this many steps
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] AddressSpace& mem() noexcept { return space_; }
  [[nodiscard]] const AddressSpace& mem() const noexcept { return space_; }
  [[nodiscard]] Heap& heap() noexcept { return *heap_; }
  [[nodiscard]] Stack& stack() noexcept { return *stack_; }
  [[nodiscard]] const Heap& heap() const noexcept { return *heap_; }
  [[nodiscard]] const Stack& stack() const noexcept { return *stack_; }

  // --- hang oracle ---
  // Consumes `n` steps of work; throws SimHang when the budget is exceeded.
  // Each step also advances the virtual cycle clock.
  void tick(std::uint64_t n = 1);
  // How many of `n` per-unit {tick(); work} iterations would complete before
  // the budget hangs. Bulk loops tick and commit this many units, then issue
  // one more tick() to raise SimHang at exactly the step the reference
  // per-byte loop would have (DESIGN.md, tick-equivalence argument).
  [[nodiscard]] std::uint64_t budget_units(std::uint64_t n) const noexcept {
    const std::uint64_t budget = config_.step_budget;
    const std::uint64_t left = budget > steps_ ? budget - steps_ : 0;
    return n < left ? n : left;
  }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t step_budget() const noexcept { return config_.step_budget; }
  void set_step_budget(std::uint64_t budget) noexcept { config_.step_budget = budget; }
  void reset_steps() noexcept { steps_ = 0; }

  // --- virtual cycle clock (rdtsc analogue) ---
  [[nodiscard]] std::uint64_t rdtsc() const noexcept { return cycles_; }
  void add_cycles(std::uint64_t n) noexcept { cycles_ += n; }

  // --- errno cell ---
  [[nodiscard]] int err() const noexcept { return errno_; }
  void set_err(int value) noexcept { errno_ = value; }

  // --- rodata interning (string literals, read-only test values) ---
  // Maps `text` (NUL-terminated) into a read-only region and returns its
  // simulated address. Identical strings are interned once.
  Addr intern_string(const std::string& text);

  // --- simulated text segment & GOT (hijack oracle) ---
  // Registers a named code entry point; returns its pseudo code address in
  // the (read-only) text region. Idempotent per name.
  Addr register_code(const std::string& name);
  // Resolves a code address back to its name; nullopt for addresses that do
  // not denote registered code (i.e. attacker-chosen values).
  [[nodiscard]] std::optional<std::string> resolve_code(Addr addr) const;

  // Defines a writable 8-byte GOT slot holding the code address for `name`
  // (registering the code if needed). Returns the slot address. The slot is
  // ordinary writable data — exactly why GOT overwrites work.
  Addr define_got_slot(const std::string& name);
  [[nodiscard]] Addr got_slot(const std::string& name) const;
  [[nodiscard]] bool has_got_slot(const std::string& name) const noexcept {
    return got_slots_.contains(name);
  }

  // Performs an indirect call through the named slot: loads the stored code
  // address and resolves it. Returns the callee name, or raises
  // ControlFlowHijack when the slot was overwritten with a non-code value.
  std::string call_through_got(const std::string& name);

  // --- snapshot / restore --------------------------------------------------
  // Captures the whole machine: address-space contents (as a refcounted COW
  // image — see AddressSpace::Snapshot), heap/stack bookkeeping,
  // step/cycle/errno cells, and the rodata/text/GOT loader tables (shared,
  // immutable once captured). restore() rewinds to exactly that state; the
  // fault injector uses it to reset a fully-loaded testbed between probes
  // instead of rebuilding the process. Snapshots are cheap to copy and any
  // number may coexist; a machine may restore any of them in any order.
  struct LoaderTables {
    std::uint64_t rodata_used = 0;
    std::unordered_map<std::string, Addr> interned;
    std::uint64_t text_next = 0;
    std::unordered_map<std::string, Addr> code_by_name;
    std::unordered_map<Addr, std::string> name_by_code;
    std::uint64_t got_next = 0;
    std::unordered_map<std::string, Addr> got_slots;
  };
  struct Snapshot {
    AddressSpace::Snapshot space;
    Heap::Snapshot heap;
    Stack::Snapshot stack;
    MachineConfig config;
    std::uint64_t steps = 0;
    std::uint64_t cycles = 0;
    int err = 0;
    std::shared_ptr<const LoaderTables> loader;
  };
  [[nodiscard]] Snapshot snapshot();
  void restore(const Snapshot& snap);

 private:
  MachineConfig config_;
  AddressSpace space_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<Stack> stack_;

  std::uint64_t steps_ = 0;
  std::uint64_t cycles_ = 0;
  int errno_ = 0;

  // rodata interning
  Addr rodata_base_ = 0;
  std::uint64_t rodata_used_ = 0;
  std::uint64_t rodata_size_ = 0;
  std::unordered_map<std::string, Addr> interned_;

  // text + GOT
  Addr text_base_ = 0;
  std::uint64_t text_next_ = 0;
  std::unordered_map<std::string, Addr> code_by_name_;
  std::unordered_map<Addr, std::string> name_by_code_;
  Addr got_base_ = 0;
  std::uint64_t got_next_ = 0;
  std::uint64_t got_capacity_ = 0;
  std::unordered_map<std::string, Addr> got_slots_;
};

}  // namespace healers::mem
