// Copy-on-write page store for the simulated address space.
//
// The snapshot machinery is built on immutable, refcounted page tables — the
// state-forking idiom of KLEE-style executors (ObjectState/ExeStateManager):
//
//   Page        one sealed 4 KiB block of simulated memory; immutable and
//               shared by refcount between any number of images and spaces.
//   RegionImage the sealed page table of one region (metadata + PageRefs).
//   SpaceImage  a whole sealed address space: sorted RegionImages + the bump
//               allocator cursor. AddressSpace::Snapshot is a shared_ptr to
//               one of these, so forking a state copies only metadata.
//
// Sealed pages whose content is all zero collapse onto one global zero page
// (fresh heaps and stacks are mostly zeros), so a pristine testbed image is
// far smaller than the address space it describes — the "probe states per
// GB" lever of the campaign engine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace healers::mem {

using Addr = std::uint64_t;

enum class Perm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

[[nodiscard]] constexpr bool allows(Perm have, Perm want) noexcept {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

enum class RegionKind : std::uint8_t {
  kHeapArena,
  kStack,
  kRodata,   // string literals, read-only tables
  kData,     // writable globals, simulated GOT
  kScratch,  // injector-provisioned test buffers
};

// COW granularity. Matches the region cache's page size so one "page" means
// the same thing throughout the memory model.
inline constexpr unsigned kCowPageBits = 12;
inline constexpr std::uint64_t kCowPageSize = std::uint64_t{1} << kCowPageBits;

// One sealed page. Immutable after construction.
struct Page {
  std::array<std::byte, kCowPageSize> data;
};
using PageRef = std::shared_ptr<const Page>;

// The shared all-zero page; every sealed all-zero page aliases it.
[[nodiscard]] inline const PageRef& zero_page() {
  static const PageRef page = std::make_shared<const Page>();  // value-init: zeroed
  return page;
}

// The sealed form of one region: metadata plus a full page table. Pages are
// never null; the tail page of a region whose size is not a page multiple is
// zero-padded past `size`.
struct RegionImage {
  Addr base = 0;
  std::uint64_t size = 0;
  Perm perm = Perm::kNone;
  RegionKind kind = RegionKind::kScratch;
  std::string label;
  std::vector<PageRef> pages;

  [[nodiscard]] std::uint64_t page_count() const noexcept { return pages.size(); }
};

// A whole sealed address space. Immutable once published inside a
// shared_ptr<const SpaceImage>; any number of snapshots, forked testbeds and
// live spaces share it concurrently (refcounts are atomic).
struct SpaceImage {
  std::vector<RegionImage> regions;  // sorted by base
  Addr next_base = 0;

  // Distinct Page allocations reachable from this image — the true memory
  // footprint, as opposed to the address-space size it describes. Pages
  // shared with `except` (e.g. the pristine image a state forked from) are
  // not counted, giving the marginal footprint of a fork.
  [[nodiscard]] std::size_t distinct_pages(const SpaceImage* except = nullptr) const;
};

// Counters for the COW machinery, exposed via AddressSpace::cow_stats().
// Sums of per-access events; everything here is operational telemetry (it
// depends on sharing history, worker count and reset mode) and must never be
// folded into deterministic campaign artifacts compared across modes.
struct CowStats {
  std::uint64_t snapshots_taken = 0;   // images sealed (fork points)
  std::uint64_t restores = 0;          // state adoptions (probe resets)
  std::uint64_t pages_sealed = 0;      // working pages frozen into an image
  std::uint64_t pages_shared = 0;      // image pages reused by ref, not copied
  std::uint64_t pages_faulted = 0;     // pages copied in from backing on access
  std::uint64_t pages_privatized = 0;  // COW breaks: shared page made writable
  std::uint64_t pages_dropped = 0;     // private pages discarded by restore

  CowStats& operator+=(const CowStats& other) noexcept {
    snapshots_taken += other.snapshots_taken;
    restores += other.restores;
    pages_sealed += other.pages_sealed;
    pages_shared += other.pages_shared;
    pages_faulted += other.pages_faulted;
    pages_privatized += other.pages_privatized;
    pages_dropped += other.pages_dropped;
    return *this;
  }
};

}  // namespace healers::mem
