#include "memmodel/heap.hpp"

#include <algorithm>
#include <stdexcept>

namespace healers::mem {

namespace {

constexpr std::uint64_t kInUseBit = 0x1;

[[nodiscard]] std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Heap::Heap(AddressSpace& space, std::uint64_t arena_size, std::string label) : space_(space) {
  if (arena_size < 4 * kMinChunk) {
    throw std::invalid_argument("Heap: arena too small");
  }
  arena_size = round_up(arena_size, kAlign);
  Region& arena = space_.map(arena_size, Perm::kReadWrite, RegionKind::kHeapArena,
                             std::move(label));
  arena_base_ = arena.base;
  arena_size_ = arena_size;

  // Bin sentinel occupies the first kMinChunk bytes; it is never allocated.
  bin_ = arena_base_;
  set_chunk(bin_, kMinChunk, true);  // marked in-use so coalescing never eats it
  space_.store64(bin_ + 16, bin_);   // fd
  space_.store64(bin_ + 24, bin_);   // bk

  // One big free chunk covers the rest of the arena.
  first_chunk_ = bin_ + kMinChunk;
  set_chunk(first_chunk_, arena_size_ - kMinChunk, false);
  list_insert(first_chunk_);
}

std::uint64_t Heap::chunk_size(Addr header) const {
  return space_.load64(header) & ~(kAlign - 1);
}

bool Heap::chunk_in_use(Addr header) const { return (space_.load64(header) & kInUseBit) != 0; }

void Heap::set_chunk(Addr header, std::uint64_t size, bool in_use) {
  space_.store64(header, size | (in_use ? kInUseBit : 0));
}

void Heap::list_insert(Addr header) {
  // Insert right after the bin sentinel: bin <-> header <-> old_first.
  const Addr old_first = space_.load64(bin_ + 16);
  space_.store64(header + 16, old_first);  // header.fd = old_first
  space_.store64(header + 24, bin_);       // header.bk = bin
  space_.store64(old_first + 24, header);  // old_first.bk = header
  space_.store64(bin_ + 16, header);       // bin.fd = header
}

void Heap::unlink(Addr header) {
  // THE unsafe unlink (default): fd and bk are read from (possibly
  // attacker-written) simulated memory and dereferenced with no sanity
  // check. Two arbitrary-ish stores follow. With safe_unlink_ set, the
  // post-2004 glibc integrity check runs first and a forged chunk aborts.
  const Addr fd = space_.load64(header + 16);
  const Addr bk = space_.load64(header + 24);
  if (safe_unlink_) {
    const bool fd_ok = space_.accessible(fd + 24, 8, Perm::kRead) &&
                       space_.load64(fd + 24) == header;
    const bool bk_ok = space_.accessible(bk + 16, 8, Perm::kRead) &&
                       space_.load64(bk + 16) == header;
    if (!fd_ok || !bk_ok) {
      throw SimAbort("corrupted double-linked list (safe unlinking)");
    }
  }
  space_.store64(fd + 24, bk);  // fd->bk = bk
  space_.store64(bk + 16, fd);  // bk->fd = fd
}

Addr Heap::malloc(std::uint64_t size) {
  const std::uint64_t need =
      std::max<std::uint64_t>(kMinChunk, round_up(size + kHeaderSize, kAlign));
  if (need < size) {  // overflow in round-up (huge request)
    ++stats_.failed_allocs;
    return 0;
  }

  // First fit over the free list.
  for (Addr cur = space_.load64(bin_ + 16); cur != bin_; cur = space_.load64(cur + 16)) {
    const std::uint64_t cur_size = chunk_size(cur);
    if (cur_size < need) continue;
    unlink(cur);
    if (cur_size - need >= kMinChunk) {
      // Split: tail becomes a new free chunk.
      const Addr tail = cur + need;
      set_chunk(tail, cur_size - need, false);
      list_insert(tail);
      set_chunk(cur, need, true);
    } else {
      set_chunk(cur, cur_size, true);
    }
    ++stats_.allocations;
    ++stats_.chunks_in_use;
    stats_.bytes_in_use += chunk_size(cur) - kHeaderSize;
    return cur + kHeaderSize;
  }
  ++stats_.failed_allocs;
  return 0;
}

void Heap::free(Addr user) {
  if (user == 0) return;
  const Addr header = user - kHeaderSize;
  if (header < arena_base_ + kMinChunk || header >= arena_base_ + arena_size_) {
    throw SimAbort("free(): invalid pointer");
  }
  if (!chunk_in_use(header)) {
    throw SimAbort("free(): double free or corruption");
  }
  std::uint64_t size = chunk_size(header);
  if (size < kMinChunk || header + size > arena_base_ + arena_size_) {
    throw SimAbort("free(): invalid chunk size");
  }

  stats_.bytes_in_use -= size - kHeaderSize;
  --stats_.chunks_in_use;
  ++stats_.frees;

  // Forward coalescing: if the next chunk claims to be free, unlink it and
  // absorb it. A corrupted neighbour header (overflowed by the attacker to
  // look free, with crafted fd/bk) drives unlink() into the arbitrary write.
  const Addr next = header + size;
  if (next + kHeaderSize <= arena_base_ + arena_size_) {
    const std::uint64_t next_size = chunk_size(next);
    if (!chunk_in_use(next) && next_size >= kMinChunk &&
        next + next_size <= arena_base_ + arena_size_) {
      unlink(next);
      size += next_size;
    }
  }

  set_chunk(header, size, false);
  list_insert(header);
}

Addr Heap::realloc(Addr user, std::uint64_t size) {
  if (user == 0) return malloc(size);
  if (size == 0) {
    free(user);
    return 0;
  }
  const std::uint64_t old_usable = usable_size(user);
  const Addr fresh = malloc(size);
  if (fresh == 0) return 0;
  const std::uint64_t copy = std::min(old_usable, size);
  if (copy > 0) {
    const auto bytes = space_.read_bytes(user, copy);
    space_.write_bytes(fresh, bytes.data(), bytes.size());
  }
  free(user);
  return fresh;
}

std::uint64_t Heap::usable_size(Addr user) const {
  const Addr header = user - kHeaderSize;
  return chunk_size(header) - kHeaderSize;
}

bool Heap::is_live(Addr user) const noexcept {
  if (user < arena_base_ + kMinChunk + kHeaderSize || user >= arena_base_ + arena_size_) {
    return false;
  }
  // Walk the chunk chain looking for an in-use chunk with this user address.
  for (const ChunkInfo& info : chunks()) {
    if (info.user == user) return info.in_use;
  }
  return false;
}

std::vector<ChunkInfo> Heap::chunks() const {
  std::vector<ChunkInfo> out;
  Addr cur = first_chunk_;
  while (cur + kHeaderSize <= arena_base_ + arena_size_) {
    const std::uint64_t size = chunk_size(cur);
    if (size < kMinChunk || cur + size > arena_base_ + arena_size_) break;  // corrupt
    out.push_back(ChunkInfo{cur, cur + kHeaderSize, size, chunk_in_use(cur)});
    cur += size;
  }
  return out;
}

std::string Heap::check_integrity() const {
  std::uint64_t covered = kMinChunk;  // bin sentinel
  const std::vector<ChunkInfo> chain = chunks();
  for (const ChunkInfo& info : chain) covered += info.size;
  if (covered != arena_size_) {
    return "chunk chain covers " + std::to_string(covered) + " of " +
           std::to_string(arena_size_) + " arena bytes";
  }
  // Every free chunk must be on the list exactly once, and vice versa.
  std::vector<Addr> on_list;
  for (Addr cur = space_.load64(bin_ + 16); cur != bin_; cur = space_.load64(cur + 16)) {
    on_list.push_back(cur);
    if (on_list.size() > chain.size() + 1) return "free list cycle";
  }
  std::size_t free_chunks = 0;
  for (const ChunkInfo& info : chain) {
    if (info.in_use) continue;
    ++free_chunks;
    if (std::count(on_list.begin(), on_list.end(), info.header) != 1) {
      return "free chunk at 0x" + std::to_string(info.header) + " not on list exactly once";
    }
  }
  if (free_chunks != on_list.size()) {
    return "free list has " + std::to_string(on_list.size()) + " entries but chain has " +
           std::to_string(free_chunks) + " free chunks";
  }
  return {};
}

}  // namespace healers::mem
