#include "memmodel/addr_space.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace healers::mem {

namespace {

// Base of the simulated mappable range; below this everything faults, which
// makes small-integer "pointers" (including NULL and NULL+offset) invalid, as
// on a real OS with a protected zero page.
constexpr Addr kFirstBase = 0x10000;
// Guard gap between consecutive mappings.
constexpr Addr kGuardGap = 0x1000;

}  // namespace

AddressSpace::AddressSpace() : next_base_(kFirstBase) {}

Region& AddressSpace::map(std::uint64_t size, Perm perm, RegionKind kind, std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map: zero-size region");
  const Addr base = next_base_;
  next_base_ += size + kGuardGap;
  // Round the next base up to a page-ish boundary for readable addresses.
  next_base_ = (next_base_ + 0xFFF) & ~Addr{0xFFF};
  return map_at(base, size, perm, kind, std::move(label));
}

Region& AddressSpace::map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind,
                             std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map_at: zero-size region");
  // Reject overlap: find the first region at or after base, and the one
  // before it.
  auto after = regions_.lower_bound(base);
  if (after != regions_.end() && base + size > after->second.base) {
    throw std::invalid_argument("AddressSpace::map_at: overlaps region " + after->second.label);
  }
  if (after != regions_.begin()) {
    const auto& prev = std::prev(after)->second;
    if (prev.end() > base) {
      throw std::invalid_argument("AddressSpace::map_at: overlaps region " + prev.label);
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.kind = kind;
  region.label = std::move(label);
  region.bytes.assign(size, std::byte{0});
  auto [it, inserted] = regions_.emplace(base, std::move(region));
  (void)inserted;
  return it->second;
}

void AddressSpace::unmap(Addr base) {
  if (regions_.erase(base) == 0) {
    throw std::invalid_argument("AddressSpace::unmap: no region at base");
  }
}

const Region* AddressSpace::find(Addr addr) const noexcept {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  const Region& region = std::prev(it)->second;
  return region.contains(addr) ? &region : nullptr;
}

Region* AddressSpace::find(Addr addr) noexcept {
  return const_cast<Region*>(static_cast<const AddressSpace*>(this)->find(addr));
}

void AddressSpace::protect(Addr base, Perm perm) {
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    throw std::invalid_argument("AddressSpace::protect: no region at base");
  }
  it->second.perm = perm;
}

const Region& AddressSpace::checked(Addr addr, std::uint64_t len, Perm want) const {
  const Region* region = find(addr);
  if (region == nullptr) {
    throw AccessFault(FaultKind::kSegv, addr, "unmapped address");
  }
  if (!allows(region->perm, want)) {
    throw AccessFault(FaultKind::kSegv, addr,
                      std::string("permission violation in region '") + region->label + "'");
  }
  if (len > region->size - (addr - region->base)) {
    throw AccessFault(FaultKind::kSegv, region->end(),
                      "access of " + std::to_string(len) + " bytes runs past region '" +
                          region->label + "'");
  }
  return *region;
}

Region& AddressSpace::checked_mut(Addr addr, std::uint64_t len, Perm want) {
  return const_cast<Region&>(checked(addr, len, want));
}

std::uint8_t AddressSpace::load8(Addr addr) const {
  const Region& region = checked(addr, 1, Perm::kRead);
  return std::to_integer<std::uint8_t>(region.bytes[addr - region.base]);
}

void AddressSpace::store8(Addr addr, std::uint8_t value) {
  Region& region = checked_mut(addr, 1, Perm::kWrite);
  region.mark_dirty(addr - region.base, 1);
  region.bytes[addr - region.base] = std::byte{value};
}

std::uint64_t AddressSpace::load64(Addr addr) const {
  const Region& region = checked(addr, 8, Perm::kRead);
  std::uint64_t value = 0;
  const std::size_t off = addr - region.base;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | std::to_integer<std::uint64_t>(region.bytes[off + static_cast<std::size_t>(i)]);
  }
  return value;
}

void AddressSpace::store64(Addr addr, std::uint64_t value) {
  Region& region = checked_mut(addr, 8, Perm::kWrite);
  region.mark_dirty(addr - region.base, 8);
  const std::size_t off = addr - region.base;
  for (std::size_t i = 0; i < 8; ++i) {
    region.bytes[off + i] = std::byte{static_cast<std::uint8_t>(value >> (8 * i))};
  }
}

std::vector<std::byte> AddressSpace::read_bytes(Addr addr, std::uint64_t len) const {
  if (len == 0) return {};
  const Region& region = checked(addr, len, Perm::kRead);
  const std::size_t off = addr - region.base;
  return {region.bytes.begin() + static_cast<std::ptrdiff_t>(off),
          region.bytes.begin() + static_cast<std::ptrdiff_t>(off + len)};
}

void AddressSpace::write_bytes(Addr addr, const std::byte* data, std::uint64_t len) {
  if (len == 0) return;
  Region& region = checked_mut(addr, len, Perm::kWrite);
  region.mark_dirty(addr - region.base, len);
  std::memcpy(region.bytes.data() + (addr - region.base), data, len);
}

std::string AddressSpace::read_cstring(Addr addr, std::uint64_t max_len) const {
  std::string out;
  for (std::uint64_t i = 0; i < max_len; ++i) {
    const std::uint8_t byte = load8(addr + i);
    if (byte == 0) return out;
    out += static_cast<char>(byte);
  }
  throw AccessFault(FaultKind::kSegv, addr + max_len,
                    "unterminated string scan exceeded " + std::to_string(max_len) + " bytes");
}

void AddressSpace::write_cstring(Addr addr, std::string_view text) {
  check(addr, text.size() + 1, Perm::kWrite);
  write_bytes(addr, reinterpret_cast<const std::byte*>(text.data()), text.size());
  store8(addr + text.size(), 0);
}

void AddressSpace::check(Addr addr, std::uint64_t len, Perm want) const {
  if (len == 0) return;
  (void)checked(addr, len, want);
}

AddressSpace::Snapshot AddressSpace::snapshot() {
  Snapshot snap;
  snap.regions.reserve(regions_.size());
  for (auto& [base, region] : regions_) {
    region.mark_clean();
    snap.regions.push_back(region);  // already clean, bytes copied
  }
  snap.next_base = next_base_;
  return snap;
}

void AddressSpace::restore(const Snapshot& snap) {
  // Both sequences are sorted by base: merge-walk them, unmapping regions
  // absent from the snapshot and copying back only dirty byte ranges.
  auto live = regions_.begin();
  for (const Region& saved : snap.regions) {
    while (live != regions_.end() && live->first < saved.base) {
      live = regions_.erase(live);  // mapped after the snapshot
    }
    if (live == regions_.end() || live->first != saved.base) {
      // Unmapped since the snapshot: bring the saved copy back whole.
      live = regions_.emplace_hint(live, saved.base, saved);
      ++live;
      continue;
    }
    Region& region = live->second;
    region.perm = saved.perm;
    if (region.dirty()) {
      const std::uint64_t lo = region.dirty_lo;
      const std::uint64_t hi = std::min<std::uint64_t>(region.dirty_hi, region.size);
      std::memcpy(region.bytes.data() + lo, saved.bytes.data() + lo, hi - lo);
      region.mark_clean();
    }
    ++live;
  }
  while (live != regions_.end()) live = regions_.erase(live);
  next_base_ = snap.next_base;
}

bool AddressSpace::accessible(Addr addr, std::uint64_t len, Perm want) const noexcept {
  if (len == 0) return true;
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return false;
  return len <= region->size - (addr - region->base);
}

}  // namespace healers::mem
