#include "memmodel/addr_space.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace healers::mem {

namespace {

// Base of the simulated mappable range; below this everything faults, which
// makes small-integer "pointers" (including NULL and NULL+offset) invalid, as
// on a real OS with a protected zero page.
constexpr Addr kFirstBase = 0x10000;
// Guard gap between consecutive mappings.
constexpr Addr kGuardGap = 0x1000;

[[nodiscard]] std::size_t bitmap_words(std::uint64_t pages) noexcept {
  return static_cast<std::size_t>((pages + 63) / 64);
}

}  // namespace

AddressSpace::AddressSpace() : next_base_(kFirstBase) {}

Region& AddressSpace::map(std::uint64_t size, Perm perm, RegionKind kind, std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map: zero-size region");
  const Addr base = next_base_;
  next_base_ += size + kGuardGap;
  // Round the next base up to a page-ish boundary for readable addresses.
  next_base_ = (next_base_ + 0xFFF) & ~Addr{0xFFF};
  return map_at(base, size, perm, kind, std::move(label));
}

Region& AddressSpace::map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind,
                             std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map_at: zero-size region");
  // Reject overlap: find the first region at or after base, and the one
  // before it.
  auto after = regions_.lower_bound(base);
  if (after != regions_.end() && base + size > after->second.base) {
    throw std::invalid_argument("AddressSpace::map_at: overlaps region " + after->second.label);
  }
  if (after != regions_.begin()) {
    const auto& prev = std::prev(after)->second;
    if (prev.end() > base) {
      throw std::invalid_argument("AddressSpace::map_at: overlaps region " + prev.label);
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.kind = kind;
  region.label = std::move(label);
  region.working.assign(size, std::byte{0});
  // A fresh region has no sealed form to fall back on: born fully resident
  // and fully private, so the next snapshot seals every page (all-zero pages
  // collapse onto the shared zero page).
  const std::uint64_t pages = region.page_count();
  region.resident.assign(bitmap_words(pages), ~std::uint64_t{0});
  region.private_.assign(bitmap_words(pages), ~std::uint64_t{0});
  region.resident_count = pages;
  region.private_count = pages;
  region.all_resident = true;
  region.backing = nullptr;
  auto [it, inserted] = regions_.emplace(base, std::move(region));
  (void)inserted;
  cache_flush();
  return it->second;
}

void AddressSpace::unmap(Addr base) {
  if (regions_.erase(base) == 0) {
    throw std::invalid_argument("AddressSpace::unmap: no region at base");
  }
  cache_flush();
}

Region* AddressSpace::cache_lookup(Addr addr) const noexcept {
  if (last_hit_ != nullptr && last_hit_->contains(addr)) {
    ++cache_hits_;
    return last_hit_;
  }
  const Addr page = addr >> kCachePageBits;
  const CacheWay& way = ways_[page & (kCacheWays - 1)];
  if (way.page == page && way.region->contains(addr)) {
    ++cache_hits_;
    last_hit_ = way.region;
    return way.region;
  }
  ++cache_misses_;
  return nullptr;
}

void AddressSpace::cache_fill(Addr addr, Region* region) const noexcept {
  last_hit_ = region;
  const Addr page = addr >> kCachePageBits;
  ways_[page & (kCacheWays - 1)] = CacheWay{page, region};
}

const Region* AddressSpace::find(Addr addr) const noexcept {
  if (cache_enabled_) {
    if (Region* cached = cache_lookup(addr)) return cached;
  }
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  const Region& region = std::prev(it)->second;
  if (!region.contains(addr)) return nullptr;
  // The cache stores non-const pointers (it backs both overloads); regions_
  // is owned by this object, so shedding const here is sound.
  if (cache_enabled_) cache_fill(addr, const_cast<Region*>(&region));
  return &region;
}

Region* AddressSpace::find(Addr addr) noexcept {
  return const_cast<Region*>(static_cast<const AddressSpace*>(this)->find(addr));
}

std::vector<const Region*> AddressSpace::region_map() const {
  std::vector<const Region*> out;
  out.reserve(regions_.size());
  for (const auto& [base, region] : regions_) out.push_back(&region);
  return out;
}

void AddressSpace::protect(Addr base, Perm perm) {
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    throw std::invalid_argument("AddressSpace::protect: no region at base");
  }
  it->second.perm = perm;
  cache_flush();
}

const Region& AddressSpace::checked(Addr addr, std::uint64_t len, Perm want) const {
  const Region* region = find(addr);
  if (region == nullptr) {
    throw AccessFault(FaultKind::kSegv, addr, "unmapped address");
  }
  if (!allows(region->perm, want)) {
    throw AccessFault(FaultKind::kSegv, addr,
                      std::string("permission violation in region '") + region->label + "'");
  }
  if (len > region->size - (addr - region->base)) {
    throw AccessFault(FaultKind::kSegv, region->end(),
                      "access of " + std::to_string(len) + " bytes runs past region '" +
                          region->label + "'");
  }
  return *region;
}

Region& AddressSpace::checked_mut(Addr addr, std::uint64_t len, Perm want) {
  return const_cast<Region&>(checked(addr, len, want));
}

void AddressSpace::fault_in(const Region& region, std::uint64_t off,
                            std::uint64_t len) const noexcept {
  if (region.all_resident) return;
  const std::uint64_t first = off >> kCowPageBits;
  const std::uint64_t last = (off + len - 1) >> kCowPageBits;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (Region::test_bit(region.resident, p)) continue;
    // A non-resident page implies an adopted image to fall back on: regions
    // without backing are born all_resident and short-circuit above.
    const std::uint64_t page_off = p << kCowPageBits;
    const std::uint64_t page_len = std::min<std::uint64_t>(kCowPageSize, region.size - page_off);
    std::memcpy(region.working.data() + page_off, region.backing->pages[p]->data.data(),
                static_cast<std::size_t>(page_len));
    Region::set_bit(region.resident, p);
    ++region.resident_count;
    ++cow_.pages_faulted;
  }
  if (region.resident_count == region.page_count()) region.all_resident = true;
}

void AddressSpace::privatize(Region& region, std::uint64_t off, std::uint64_t len) noexcept {
  if (region.private_count == region.page_count()) return;  // fully diverged already
  fault_in(region, off, len);
  const std::uint64_t first = off >> kCowPageBits;
  const std::uint64_t last = (off + len - 1) >> kCowPageBits;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (Region::set_bit(region.private_, p)) {
      ++region.private_count;
      ++cow_.pages_privatized;
    }
  }
}

std::uint8_t AddressSpace::load8(Addr addr) const {
  const Region& region = checked(addr, 1, Perm::kRead);
  const std::uint64_t off = addr - region.base;
  fault_in(region, off, 1);
  return std::to_integer<std::uint8_t>(region.working[off]);
}

void AddressSpace::store8(Addr addr, std::uint8_t value) {
  Region& region = checked_mut(addr, 1, Perm::kWrite);
  const std::uint64_t off = addr - region.base;
  privatize(region, off, 1);
  region.working[off] = std::byte{value};
}

std::uint64_t AddressSpace::load64(Addr addr) const {
  const Region& region = checked(addr, 8, Perm::kRead);
  const std::uint64_t off = addr - region.base;
  fault_in(region, off, 8);
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t value;
    std::memcpy(&value, region.working.data() + off, 8);
    return value;
  } else {
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) |
              std::to_integer<std::uint64_t>(region.working[off + static_cast<std::size_t>(i)]);
    }
    return value;
  }
}

void AddressSpace::store64(Addr addr, std::uint64_t value) {
  Region& region = checked_mut(addr, 8, Perm::kWrite);
  const std::uint64_t off = addr - region.base;
  privatize(region, off, 8);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(region.working.data() + off, &value, 8);
  } else {
    for (std::size_t i = 0; i < 8; ++i) {
      region.working[off + i] = std::byte{static_cast<std::uint8_t>(value >> (8 * i))};
    }
  }
}

std::vector<std::byte> AddressSpace::read_bytes(Addr addr, std::uint64_t len) const {
  if (len == 0) return {};
  const Region& region = checked(addr, len, Perm::kRead);
  const std::uint64_t off = addr - region.base;
  fault_in(region, off, len);
  return {region.working.begin() + static_cast<std::ptrdiff_t>(off),
          region.working.begin() + static_cast<std::ptrdiff_t>(off + len)};
}

void AddressSpace::write_bytes(Addr addr, const std::byte* data, std::uint64_t len) {
  if (len == 0) return;
  Region& region = checked_mut(addr, len, Perm::kWrite);
  const std::uint64_t off = addr - region.base;
  privatize(region, off, len);
  std::memcpy(region.working.data() + off, data, len);
}

void AddressSpace::loader_fill(Addr addr, const void* data, std::uint64_t len) {
  if (len == 0) return;
  Region* region = find(addr);
  if (region == nullptr || len > region->size - (addr - region->base)) {
    throw std::logic_error("AddressSpace::loader_fill: range not inside one mapped region");
  }
  const std::uint64_t off = addr - region->base;
  privatize(*region, off, len);
  std::memcpy(region->working.data() + off, data, len);
}

const std::byte* AddressSpace::span(Addr addr, std::uint64_t len, Perm want) const {
  const Region& region = checked(addr, len, want);
  const std::uint64_t off = addr - region.base;
  fault_in(region, off, len);
  return region.working.data() + off;
}

std::byte* AddressSpace::mutable_span(Addr addr, std::uint64_t len) {
  Region& region = checked_mut(addr, len, Perm::kWrite);
  const std::uint64_t off = addr - region.base;
  privatize(region, off, len);
  return region.working.data() + off;
}

std::uint64_t AddressSpace::span_extent(Addr addr, Perm want) const noexcept {
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return 0;
  return region->size - (addr - region->base);
}

std::uint64_t AddressSpace::span_extent_back(Addr addr, Perm want) const noexcept {
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return 0;
  return addr - region->base + 1;
}

AddressSpace::TerminatorScan AddressSpace::scan_terminator(Addr addr,
                                                           std::uint64_t cap) const noexcept {
  // Per-region chunks: abutting regions (map_at permits them) are scanned
  // straight through, exactly as a per-byte load8 loop would walk them.
  std::uint64_t scanned = 0;
  while (scanned < cap) {
    const Addr cursor = addr + scanned;
    const Region* region = find(cursor);
    if (region == nullptr || !allows(region->perm, Perm::kRead)) {
      return {false, scanned};
    }
    const std::uint64_t chunk =
        std::min<std::uint64_t>(region->end() - cursor, cap - scanned);
    fault_in(*region, cursor - region->base, chunk);
    const void* hit = std::memchr(region->working.data() + (cursor - region->base), 0,
                                  static_cast<std::size_t>(chunk));
    if (hit != nullptr) {
      const auto off = static_cast<const std::byte*>(hit) -
                       (region->working.data() + (cursor - region->base));
      return {true, scanned + static_cast<std::uint64_t>(off)};
    }
    scanned += chunk;
  }
  return {false, scanned};
}

std::string AddressSpace::read_cstring(Addr addr, std::uint64_t max_len) const {
  const TerminatorScan scan = scan_terminator(addr, max_len);
  if (scan.found) {
    std::string out;
    out.resize(static_cast<std::size_t>(scan.scanned));
    // The scan proved [addr, addr+scanned) readable (and resident); gather
    // per-region chunks (the run may cross abutting regions).
    std::uint64_t copied = 0;
    while (copied < scan.scanned) {
      const Addr cursor = addr + copied;
      const Region* region = find(cursor);
      const std::uint64_t chunk =
          std::min<std::uint64_t>(region->end() - cursor, scan.scanned - copied);
      std::memcpy(out.data() + copied, region->working.data() + (cursor - region->base), chunk);
      copied += chunk;
    }
    return out;
  }
  if (scan.scanned < max_len) {
    // The scan left readable memory: replay the faulting byte access so the
    // fault kind/address/detail match the reference per-byte loop exactly.
    (void)load8(addr + scan.scanned);
  }
  throw AccessFault(FaultKind::kSegv, addr + max_len,
                    "unterminated string scan exceeded " + std::to_string(max_len) + " bytes");
}

void AddressSpace::write_cstring(Addr addr, std::string_view text) {
  check(addr, text.size() + 1, Perm::kWrite);
  write_bytes(addr, reinterpret_cast<const std::byte*>(text.data()), text.size());
  store8(addr + text.size(), 0);
}

void AddressSpace::check(Addr addr, std::uint64_t len, Perm want) const {
  if (len == 0) return;
  (void)checked(addr, len, want);
}

PageRef AddressSpace::seal_page(const Region& region, std::uint64_t p) {
  const std::uint64_t off = p << kCowPageBits;
  const std::uint64_t len = std::min<std::uint64_t>(kCowPageSize, region.size - off);
  const std::byte* src = region.working.data() + off;
  // All-zero pages collapse onto the global zero page: a pristine testbed
  // image mostly describes untouched heap/stack and costs almost nothing.
  if (std::memcmp(src, zero_page()->data.data(), static_cast<std::size_t>(len)) == 0) {
    return zero_page();
  }
  auto page = std::make_shared<Page>();
  std::memcpy(page->data.data(), src, static_cast<std::size_t>(len));
  if (len < kCowPageSize) {
    std::memset(page->data.data() + len, 0, static_cast<std::size_t>(kCowPageSize - len));
  }
  ++cow_.pages_sealed;
  return page;
}

AddressSpace::Snapshot AddressSpace::snapshot() {
  auto image = std::make_shared<SpaceImage>();
  image->regions.reserve(regions_.size());
  for (const auto& [base, region] : regions_) {
    RegionImage ri;
    ri.base = region.base;
    ri.size = region.size;
    ri.perm = region.perm;
    ri.kind = region.kind;
    ri.label = region.label;
    const std::uint64_t pages = region.page_count();
    ri.pages.resize(static_cast<std::size_t>(pages));
    for (std::uint64_t p = 0; p < pages; ++p) {
      if (Region::test_bit(region.private_, p)) {
        ri.pages[p] = seal_page(region, p);
      } else {
        // Unwritten since the last adoption: share the sealed page by ref.
        // (backing is non-null here: fresh regions are born fully private.)
        ri.pages[p] = region.backing->pages[p];
        ++cow_.pages_shared;
      }
    }
    image->regions.push_back(std::move(ri));
  }
  image->next_base = next_base_;
  ++cow_.snapshots_taken;
  adopt(image);
  return Snapshot(std::move(image));
}

void AddressSpace::adopt(const std::shared_ptr<const SpaceImage>& image) {
  // The image was built from regions_ in iteration order, so entries align.
  std::size_t i = 0;
  for (auto& [base, region] : regions_) {
    region.backing = &image->regions[i++];
    if (region.private_count != 0) {
      std::fill(region.private_.begin(), region.private_.end(), 0);
      region.private_count = 0;
    }
    // Residency survives: working bytes equal the new image by construction
    // (private pages were sealed from them, shared pages never diverged).
  }
  base_image_ = image;
}

void AddressSpace::reattach(Region& region, const RegionImage& ri) {
  region.perm = ri.perm;
  region.kind = ri.kind;
  if (region.label != ri.label) region.label = ri.label;
  const std::uint64_t pages = region.page_count();
  const RegionImage* old = region.backing;
  if (old == &ri) {
    // Reset to the image we already track (the per-probe fast path): drop
    // the private pages — their resident bits with them, so the next access
    // faults the sealed bytes back in — and nothing else changes.
    if (region.private_count != 0) {
      for (std::size_t w = 0; w < region.private_.size(); ++w) {
        region.resident[w] &= ~region.private_[w];  // private ⊆ resident
        region.private_[w] = 0;
      }
      region.resident_count -= region.private_count;
      cow_.pages_dropped += region.private_count;
      region.private_count = 0;
    }
  } else {
    // A different image: keep residency only where the sealed pages are the
    // very same allocation (common along fork chains and via the zero page).
    for (std::uint64_t p = 0; p < pages; ++p) {
      if (!Region::test_bit(region.resident, p)) continue;
      const bool is_private = Region::test_bit(region.private_, p);
      const bool same_page =
          !is_private && old != nullptr && old->pages[p].get() == ri.pages[p].get();
      if (!same_page) {
        region.resident[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
        --region.resident_count;
      }
    }
    cow_.pages_dropped += region.private_count;
    std::fill(region.private_.begin(), region.private_.end(), 0);
    region.private_count = 0;
    region.backing = &ri;
  }
  region.all_resident = region.resident_count == pages;
}

Region AddressSpace::materialize(const RegionImage& ri) {
  Region region;
  region.base = ri.base;
  region.size = ri.size;
  region.perm = ri.perm;
  region.kind = ri.kind;
  region.label = ri.label;
  region.working.resize(static_cast<std::size_t>(ri.size));
  const std::uint64_t pages = region.page_count();
  region.resident.assign(bitmap_words(pages), 0);
  region.private_.assign(bitmap_words(pages), 0);
  region.resident_count = 0;
  region.private_count = 0;
  region.all_resident = false;
  region.backing = &ri;
  return region;
}

void AddressSpace::restore(const Snapshot& snap) {
  if (!snap.valid()) {
    throw std::logic_error("AddressSpace::restore: empty snapshot");
  }
  const SpaceImage& image = *snap.image();
  // Both sequences are sorted by base: merge-walk them, unmapping regions
  // absent from the image and rebinding or materializing the rest. No bytes
  // are copied here — dropped private pages fault back in lazily.
  auto live = regions_.begin();
  for (const RegionImage& ri : image.regions) {
    while (live != regions_.end() && live->first < ri.base) {
      live = regions_.erase(live);  // mapped after the fork point
    }
    if (live != regions_.end() && live->first == ri.base && live->second.size == ri.size) {
      reattach(live->second, ri);
      ++live;
      continue;
    }
    if (live != regions_.end() && live->first == ri.base) {
      live = regions_.erase(live);  // same base, different size: remade below
    }
    live = regions_.emplace_hint(live, ri.base, materialize(ri));
    ++live;
  }
  while (live != regions_.end()) live = regions_.erase(live);
  next_base_ = image.next_base;
  base_image_ = snap.image();
  ++cow_.restores;
  cache_flush();
}

bool AddressSpace::accessible(Addr addr, std::uint64_t len, Perm want) const noexcept {
  if (len == 0) return true;
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return false;
  return len <= region->size - (addr - region->base);
}

}  // namespace healers::mem
