#include "memmodel/addr_space.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace healers::mem {

namespace {

// Base of the simulated mappable range; below this everything faults, which
// makes small-integer "pointers" (including NULL and NULL+offset) invalid, as
// on a real OS with a protected zero page.
constexpr Addr kFirstBase = 0x10000;
// Guard gap between consecutive mappings.
constexpr Addr kGuardGap = 0x1000;

}  // namespace

AddressSpace::AddressSpace() : next_base_(kFirstBase) {}

Region& AddressSpace::map(std::uint64_t size, Perm perm, RegionKind kind, std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map: zero-size region");
  const Addr base = next_base_;
  next_base_ += size + kGuardGap;
  // Round the next base up to a page-ish boundary for readable addresses.
  next_base_ = (next_base_ + 0xFFF) & ~Addr{0xFFF};
  return map_at(base, size, perm, kind, std::move(label));
}

Region& AddressSpace::map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind,
                             std::string label) {
  if (size == 0) throw std::invalid_argument("AddressSpace::map_at: zero-size region");
  // Reject overlap: find the first region at or after base, and the one
  // before it.
  auto after = regions_.lower_bound(base);
  if (after != regions_.end() && base + size > after->second.base) {
    throw std::invalid_argument("AddressSpace::map_at: overlaps region " + after->second.label);
  }
  if (after != regions_.begin()) {
    const auto& prev = std::prev(after)->second;
    if (prev.end() > base) {
      throw std::invalid_argument("AddressSpace::map_at: overlaps region " + prev.label);
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.kind = kind;
  region.label = std::move(label);
  region.bytes.assign(size, std::byte{0});
  auto [it, inserted] = regions_.emplace(base, std::move(region));
  (void)inserted;
  cache_flush();
  return it->second;
}

void AddressSpace::unmap(Addr base) {
  if (regions_.erase(base) == 0) {
    throw std::invalid_argument("AddressSpace::unmap: no region at base");
  }
  cache_flush();
}

Region* AddressSpace::cache_lookup(Addr addr) const noexcept {
  if (last_hit_ != nullptr && last_hit_->contains(addr)) {
    ++cache_hits_;
    return last_hit_;
  }
  const Addr page = addr >> kCachePageBits;
  const CacheWay& way = ways_[page & (kCacheWays - 1)];
  if (way.page == page && way.region->contains(addr)) {
    ++cache_hits_;
    last_hit_ = way.region;
    return way.region;
  }
  ++cache_misses_;
  return nullptr;
}

void AddressSpace::cache_fill(Addr addr, Region* region) const noexcept {
  last_hit_ = region;
  const Addr page = addr >> kCachePageBits;
  ways_[page & (kCacheWays - 1)] = CacheWay{page, region};
}

const Region* AddressSpace::find(Addr addr) const noexcept {
  if (cache_enabled_) {
    if (Region* cached = cache_lookup(addr)) return cached;
  }
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  const Region& region = std::prev(it)->second;
  if (!region.contains(addr)) return nullptr;
  // The cache stores non-const pointers (it backs both overloads); regions_
  // is owned by this object, so shedding const here is sound.
  if (cache_enabled_) cache_fill(addr, const_cast<Region*>(&region));
  return &region;
}

Region* AddressSpace::find(Addr addr) noexcept {
  return const_cast<Region*>(static_cast<const AddressSpace*>(this)->find(addr));
}

std::vector<const Region*> AddressSpace::region_map() const {
  std::vector<const Region*> out;
  out.reserve(regions_.size());
  for (const auto& [base, region] : regions_) out.push_back(&region);
  return out;
}

void AddressSpace::protect(Addr base, Perm perm) {
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    throw std::invalid_argument("AddressSpace::protect: no region at base");
  }
  it->second.perm = perm;
  cache_flush();
}

const Region& AddressSpace::checked(Addr addr, std::uint64_t len, Perm want) const {
  const Region* region = find(addr);
  if (region == nullptr) {
    throw AccessFault(FaultKind::kSegv, addr, "unmapped address");
  }
  if (!allows(region->perm, want)) {
    throw AccessFault(FaultKind::kSegv, addr,
                      std::string("permission violation in region '") + region->label + "'");
  }
  if (len > region->size - (addr - region->base)) {
    throw AccessFault(FaultKind::kSegv, region->end(),
                      "access of " + std::to_string(len) + " bytes runs past region '" +
                          region->label + "'");
  }
  return *region;
}

Region& AddressSpace::checked_mut(Addr addr, std::uint64_t len, Perm want) {
  return const_cast<Region&>(checked(addr, len, want));
}

std::uint8_t AddressSpace::load8(Addr addr) const {
  const Region& region = checked(addr, 1, Perm::kRead);
  return std::to_integer<std::uint8_t>(region.bytes[addr - region.base]);
}

void AddressSpace::store8(Addr addr, std::uint8_t value) {
  Region& region = checked_mut(addr, 1, Perm::kWrite);
  region.mark_dirty(addr - region.base, 1);
  region.bytes[addr - region.base] = std::byte{value};
}

std::uint64_t AddressSpace::load64(Addr addr) const {
  const Region& region = checked(addr, 8, Perm::kRead);
  const std::size_t off = addr - region.base;
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t value;
    std::memcpy(&value, region.bytes.data() + off, 8);
    return value;
  } else {
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) |
              std::to_integer<std::uint64_t>(region.bytes[off + static_cast<std::size_t>(i)]);
    }
    return value;
  }
}

void AddressSpace::store64(Addr addr, std::uint64_t value) {
  Region& region = checked_mut(addr, 8, Perm::kWrite);
  region.mark_dirty(addr - region.base, 8);
  const std::size_t off = addr - region.base;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(region.bytes.data() + off, &value, 8);
  } else {
    for (std::size_t i = 0; i < 8; ++i) {
      region.bytes[off + i] = std::byte{static_cast<std::uint8_t>(value >> (8 * i))};
    }
  }
}

std::vector<std::byte> AddressSpace::read_bytes(Addr addr, std::uint64_t len) const {
  if (len == 0) return {};
  const Region& region = checked(addr, len, Perm::kRead);
  const std::size_t off = addr - region.base;
  return {region.bytes.begin() + static_cast<std::ptrdiff_t>(off),
          region.bytes.begin() + static_cast<std::ptrdiff_t>(off + len)};
}

void AddressSpace::write_bytes(Addr addr, const std::byte* data, std::uint64_t len) {
  if (len == 0) return;
  Region& region = checked_mut(addr, len, Perm::kWrite);
  region.mark_dirty(addr - region.base, len);
  std::memcpy(region.bytes.data() + (addr - region.base), data, len);
}

const std::byte* AddressSpace::span(Addr addr, std::uint64_t len, Perm want) const {
  const Region& region = checked(addr, len, want);
  return region.bytes.data() + (addr - region.base);
}

std::byte* AddressSpace::mutable_span(Addr addr, std::uint64_t len) {
  Region& region = checked_mut(addr, len, Perm::kWrite);
  region.mark_dirty(addr - region.base, len);
  return region.bytes.data() + (addr - region.base);
}

std::uint64_t AddressSpace::span_extent(Addr addr, Perm want) const noexcept {
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return 0;
  return region->size - (addr - region->base);
}

std::uint64_t AddressSpace::span_extent_back(Addr addr, Perm want) const noexcept {
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return 0;
  return addr - region->base + 1;
}

AddressSpace::TerminatorScan AddressSpace::scan_terminator(Addr addr,
                                                           std::uint64_t cap) const noexcept {
  // Per-region chunks: abutting regions (map_at permits them) are scanned
  // straight through, exactly as a per-byte load8 loop would walk them.
  std::uint64_t scanned = 0;
  while (scanned < cap) {
    const Addr cursor = addr + scanned;
    const Region* region = find(cursor);
    if (region == nullptr || !allows(region->perm, Perm::kRead)) {
      return {false, scanned};
    }
    const std::uint64_t chunk =
        std::min<std::uint64_t>(region->end() - cursor, cap - scanned);
    const void* hit = std::memchr(region->bytes.data() + (cursor - region->base), 0,
                                  static_cast<std::size_t>(chunk));
    if (hit != nullptr) {
      const auto off = static_cast<const std::byte*>(hit) -
                       (region->bytes.data() + (cursor - region->base));
      return {true, scanned + static_cast<std::uint64_t>(off)};
    }
    scanned += chunk;
  }
  return {false, scanned};
}

std::string AddressSpace::read_cstring(Addr addr, std::uint64_t max_len) const {
  const TerminatorScan scan = scan_terminator(addr, max_len);
  if (scan.found) {
    std::string out;
    out.resize(static_cast<std::size_t>(scan.scanned));
    // The scan proved [addr, addr+scanned) readable; gather per-region chunks
    // (the run may cross abutting regions).
    std::uint64_t copied = 0;
    while (copied < scan.scanned) {
      const Addr cursor = addr + copied;
      const Region* region = find(cursor);
      const std::uint64_t chunk =
          std::min<std::uint64_t>(region->end() - cursor, scan.scanned - copied);
      std::memcpy(out.data() + copied, region->bytes.data() + (cursor - region->base), chunk);
      copied += chunk;
    }
    return out;
  }
  if (scan.scanned < max_len) {
    // The scan left readable memory: replay the faulting byte access so the
    // fault kind/address/detail match the reference per-byte loop exactly.
    (void)load8(addr + scan.scanned);
  }
  throw AccessFault(FaultKind::kSegv, addr + max_len,
                    "unterminated string scan exceeded " + std::to_string(max_len) + " bytes");
}

void AddressSpace::write_cstring(Addr addr, std::string_view text) {
  check(addr, text.size() + 1, Perm::kWrite);
  write_bytes(addr, reinterpret_cast<const std::byte*>(text.data()), text.size());
  store8(addr + text.size(), 0);
}

void AddressSpace::check(Addr addr, std::uint64_t len, Perm want) const {
  if (len == 0) return;
  (void)checked(addr, len, want);
}

AddressSpace::Snapshot AddressSpace::snapshot() {
  Snapshot snap;
  snap.regions.reserve(regions_.size());
  for (auto& [base, region] : regions_) {
    region.mark_clean();
    snap.regions.push_back(region);  // already clean, bytes copied
  }
  snap.next_base = next_base_;
  return snap;
}

void AddressSpace::restore(const Snapshot& snap) {
  // Both sequences are sorted by base: merge-walk them, unmapping regions
  // absent from the snapshot and copying back only dirty byte ranges.
  auto live = regions_.begin();
  for (const Region& saved : snap.regions) {
    while (live != regions_.end() && live->first < saved.base) {
      live = regions_.erase(live);  // mapped after the snapshot
    }
    if (live == regions_.end() || live->first != saved.base) {
      // Unmapped since the snapshot: bring the saved copy back whole.
      live = regions_.emplace_hint(live, saved.base, saved);
      ++live;
      continue;
    }
    Region& region = live->second;
    region.perm = saved.perm;
    if (region.dirty()) {
      const std::uint64_t lo = region.dirty_lo;
      const std::uint64_t hi = std::min<std::uint64_t>(region.dirty_hi, region.size);
      std::memcpy(region.bytes.data() + lo, saved.bytes.data() + lo, hi - lo);
      region.mark_clean();
    }
    ++live;
  }
  while (live != regions_.end()) live = regions_.erase(live);
  next_base_ = snap.next_base;
  cache_flush();
}

bool AddressSpace::accessible(Addr addr, std::uint64_t len, Perm want) const noexcept {
  if (len == 0) return true;
  const Region* region = find(addr);
  if (region == nullptr || !allows(region->perm, want)) return false;
  return len <= region->size - (addr - region->base);
}

}  // namespace healers::mem
