#include "memmodel/machine.hpp"

#include <stdexcept>

namespace healers::mem {

namespace {
constexpr std::uint64_t kRodataSize = 256 << 10;
constexpr std::uint64_t kTextSize = 64 << 10;
constexpr std::uint64_t kGotSize = 8 << 10;
constexpr std::uint64_t kCodeStride = 16;  // pseudo function entry spacing
}  // namespace

Machine::Machine(MachineConfig config) : config_(config) {
  // Map text and rodata first so they sit at low, stable addresses.
  Region& text = space_.map(kTextSize, Perm::kRead, RegionKind::kRodata, "text");
  text_base_ = text.base;
  text_next_ = 0;

  Region& rodata = space_.map(kRodataSize, Perm::kRead, RegionKind::kRodata, "rodata");
  rodata_base_ = rodata.base;
  rodata_size_ = kRodataSize;

  Region& got = space_.map(kGotSize, Perm::kReadWrite, RegionKind::kData, "got");
  got_base_ = got.base;
  got_capacity_ = kGotSize;

  heap_ = std::make_unique<Heap>(space_, config_.heap_size);
  stack_ = std::make_unique<Stack>(space_, config_.stack_size);
}

void Machine::tick(std::uint64_t n) {
  steps_ += n;
  cycles_ += n;
  if (steps_ > config_.step_budget) {
    throw SimHang(config_.step_budget);
  }
}

Addr Machine::intern_string(const std::string& text) {
  if (auto it = interned_.find(text); it != interned_.end()) return it->second;
  const std::uint64_t need = text.size() + 1;
  if (rodata_used_ + need > rodata_size_) {
    throw std::runtime_error("Machine: rodata segment exhausted");
  }
  const Addr addr = rodata_base_ + rodata_used_;
  // rodata is mapped read-only; loader_fill bypasses the permission check
  // (this is the loader populating the segment, not simulated program code)
  // while still honouring the COW write barrier.
  space_.loader_fill(addr, text.data(), text.size());
  const char nul = '\0';
  space_.loader_fill(addr + text.size(), &nul, 1);
  rodata_used_ += need;
  interned_.emplace(text, addr);
  return addr;
}

Addr Machine::register_code(const std::string& name) {
  if (auto it = code_by_name_.find(name); it != code_by_name_.end()) return it->second;
  if (text_next_ + kCodeStride > kTextSize) {
    throw std::runtime_error("Machine: text segment exhausted");
  }
  const Addr addr = text_base_ + text_next_;
  text_next_ += kCodeStride;
  code_by_name_.emplace(name, addr);
  name_by_code_.emplace(addr, name);
  return addr;
}

std::optional<std::string> Machine::resolve_code(Addr addr) const {
  auto it = name_by_code_.find(addr);
  if (it == name_by_code_.end()) return std::nullopt;
  return it->second;
}

Addr Machine::define_got_slot(const std::string& name) {
  if (auto it = got_slots_.find(name); it != got_slots_.end()) return it->second;
  if (got_next_ + 8 > got_capacity_) {
    throw std::runtime_error("Machine: GOT exhausted");
  }
  const Addr slot = got_base_ + got_next_;
  got_next_ += 8;
  space_.store64(slot, register_code(name));
  got_slots_.emplace(name, slot);
  return slot;
}

Addr Machine::got_slot(const std::string& name) const {
  auto it = got_slots_.find(name);
  if (it == got_slots_.end()) {
    throw std::invalid_argument("Machine: no GOT slot for " + name);
  }
  return it->second;
}

std::string Machine::call_through_got(const std::string& name) {
  const Addr slot = got_slot(name);
  const Addr target = space_.load64(slot);
  tick();
  if (auto callee = resolve_code(target)) {
    return *callee;
  }
  throw ControlFlowHijack("indirect call through GOT slot '" + name + "' jumped to 0x" +
                          std::to_string(target) + " (not program code)");
}

Machine::Snapshot Machine::snapshot() {
  Snapshot snap;
  snap.space = space_.snapshot();
  snap.heap = heap_->snapshot();
  snap.stack = stack_->snapshot();
  snap.config = config_;
  snap.steps = steps_;
  snap.cycles = cycles_;
  snap.err = errno_;
  auto loader = std::make_shared<LoaderTables>();
  loader->rodata_used = rodata_used_;
  loader->interned = interned_;
  loader->text_next = text_next_;
  loader->code_by_name = code_by_name_;
  loader->name_by_code = name_by_code_;
  loader->got_next = got_next_;
  loader->got_slots = got_slots_;
  snap.loader = std::move(loader);
  return snap;
}

void Machine::restore(const Snapshot& snap) {
  space_.restore(snap.space);
  heap_->restore(snap.heap);
  stack_->restore(snap.stack);
  config_ = snap.config;
  steps_ = snap.steps;
  cycles_ = snap.cycles;
  errno_ = snap.err;
  const LoaderTables& loader = *snap.loader;
  rodata_used_ = loader.rodata_used;
  text_next_ = loader.text_next;
  got_next_ = loader.got_next;
  // The loader tables only ever grow (no API removes an entry), so an equal
  // size means an identical table — skip the copy on the hot reset path.
  if (interned_.size() != loader.interned.size()) interned_ = loader.interned;
  if (code_by_name_.size() != loader.code_by_name.size()) {
    code_by_name_ = loader.code_by_name;
    name_by_code_ = loader.name_by_code;
  }
  if (got_slots_.size() != loader.got_slots.size()) got_slots_ = loader.got_slots;
}

}  // namespace healers::mem
