#include "memmodel/cow.hpp"

#include <unordered_set>

namespace healers::mem {

std::size_t SpaceImage::distinct_pages(const SpaceImage* except) const {
  std::unordered_set<const Page*> shared;
  if (except != nullptr) {
    for (const RegionImage& region : except->regions) {
      for (const PageRef& page : region.pages) shared.insert(page.get());
    }
  }
  shared.insert(zero_page().get());  // the zero page is a global, never marginal
  std::unordered_set<const Page*> mine;
  for (const RegionImage& region : regions) {
    for (const PageRef& page : region.pages) {
      if (!shared.contains(page.get())) mine.insert(page.get());
    }
  }
  return mine.size();
}

}  // namespace healers::mem
