#include "memmodel/stack.hpp"

#include <stdexcept>

namespace healers::mem {

namespace {
constexpr std::uint64_t kRetSlotSize = 8;
constexpr std::uint64_t kAlign = 16;

[[nodiscard]] std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

Stack::Stack(AddressSpace& space, std::uint64_t size, std::string label) : space_(space) {
  size = round_up(size, kAlign);
  Region& region = space_.map(size, Perm::kReadWrite, RegionKind::kStack, std::move(label));
  region_base_ = region.base;
  region_size_ = size;
  sp_ = region_base_ + region_size_;
}

Frame& Stack::push(std::string function, std::uint64_t locals_size, std::uint64_t return_address) {
  const std::uint64_t frame_size = round_up(locals_size + kRetSlotSize, kAlign);
  if (frame_size > sp_ - region_base_) {
    throw AccessFault(FaultKind::kSegv, region_base_,
                      "stack overflow pushing frame for " + function);
  }
  Frame frame;
  frame.function = std::move(function);
  frame.size = frame_size;
  frame.base = sp_ - frame_size;
  frame.ret_slot = sp_ - kRetSlotSize;
  frame.saved_ret = return_address;
  frame.locals_next = frame.base;
  space_.store64(frame.ret_slot, return_address);
  sp_ = frame.base;
  frames_.push_back(frame);
  return frames_.back();
}

Addr Stack::alloc_local(std::uint64_t size) {
  if (frames_.empty()) throw std::logic_error("Stack::alloc_local: no live frame");
  Frame& frame = frames_.back();
  const Addr addr = frame.locals_next;
  const std::uint64_t aligned = round_up(size, 8);
  if (addr + aligned > frame.ret_slot) {
    throw std::logic_error("Stack::alloc_local: frame locals exhausted in " + frame.function);
  }
  frame.locals_next = addr + aligned;
  return addr;
}

Stack::PopResult Stack::pop() {
  if (frames_.empty()) throw std::logic_error("Stack::pop: no live frame");
  const Frame frame = frames_.back();
  frames_.pop_back();
  const std::uint64_t stored = space_.load64(frame.ret_slot);
  sp_ = frame.base + frame.size;
  return PopResult{stored, frame.saved_ret};
}

const Frame* Stack::frame_of(Addr addr) const noexcept {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    if (addr >= it->base && addr < it->base + it->size) return &*it;
  }
  return nullptr;
}

}  // namespace healers::mem
