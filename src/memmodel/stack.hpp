// Simulated call stack with in-memory return addresses.
//
// This models exactly what the stack-smashing half of demo §3.4 needs: each
// frame stores its return address in simulated memory *above* its local
// buffers, so a string overflow through a stack-allocated buffer runs into
// the saved return address (as on x86, where the stack grows down but writes
// grow up toward the saved EIP). On frame pop the machine compares the slot
// against the value recorded at push time; a mismatch in an unprotected
// process becomes a control-flow hijack.
//
// The security wrapper's libsafe-style defence uses frame_of()/frame bounds:
// a wrapped string write whose destination lies in frame F must not extend
// into F's return-address slot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memmodel/addr_space.hpp"

namespace healers::mem {

struct Frame {
  std::string function;     // name, for diagnostics
  Addr base = 0;            // lowest address of the frame
  std::uint64_t size = 0;   // total frame size incl. return-address slot
  Addr ret_slot = 0;        // address of the 8-byte saved return address
  std::uint64_t saved_ret = 0;  // value recorded at push time
  Addr locals_next = 0;     // bump pointer for local allocations
};

class Stack {
 public:
  // Carves a stack region out of `space`. Frames are pushed downward from
  // the top of the region.
  Stack(AddressSpace& space, std::uint64_t size, std::string label = "stack");

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  // Pushes a frame with room for `locals_size` bytes of locals plus the
  // return-address slot; stores `return_address` into the slot. Throws
  // AccessFault(kSegv) on stack exhaustion (stack overflow).
  Frame& push(std::string function, std::uint64_t locals_size, std::uint64_t return_address);

  // Allocates `size` bytes of locals in the current frame, lowest-first, so
  // that later writes past a buffer move *toward* the return-address slot.
  [[nodiscard]] Addr alloc_local(std::uint64_t size);

  // Pops the current frame and returns the return address as read back from
  // simulated memory (possibly corrupted). Caller compares with the recorded
  // value. Throws std::logic_error when no frame is live.
  struct PopResult {
    std::uint64_t stored_ret;  // value read from the slot at pop time
    std::uint64_t saved_ret;   // value recorded at push time
    [[nodiscard]] bool corrupted() const noexcept { return stored_ret != saved_ret; }
  };
  PopResult pop();

  [[nodiscard]] std::size_t depth() const noexcept { return frames_.size(); }
  [[nodiscard]] const std::vector<Frame>& frames() const noexcept { return frames_; }
  [[nodiscard]] const Frame* current() const noexcept {
    return frames_.empty() ? nullptr : &frames_.back();
  }

  // Innermost frame containing `addr`, or nullptr. Used by the security
  // wrapper to bound writes through stack pointers.
  [[nodiscard]] const Frame* frame_of(Addr addr) const noexcept;

  // Frame bookkeeping snapshot; stack bytes themselves live in the address
  // space (Machine::restore pairs the two).
  struct Snapshot {
    std::vector<Frame> frames;
    Addr sp = 0;
  };
  [[nodiscard]] Snapshot snapshot() const { return Snapshot{frames_, sp_}; }
  void restore(const Snapshot& snap) {
    frames_ = snap.frames;
    sp_ = snap.sp;
  }

  [[nodiscard]] Addr region_base() const noexcept { return region_base_; }
  [[nodiscard]] std::uint64_t region_size() const noexcept { return region_size_; }

 private:
  AddressSpace& space_;
  Addr region_base_ = 0;
  std::uint64_t region_size_ = 0;
  Addr sp_ = 0;  // current stack pointer (next frame ends here)
  std::vector<Frame> frames_;
};

}  // namespace healers::mem
