// Simulated address space.
//
// This is the substrate that replaces hardware memory protection in the
// paper's setup (DESIGN.md, substitution table). Library code in simlib/
// performs every load and store through this class; the first access outside
// a mapped region, or against region permissions, raises AccessFault at
// exactly the point a real process would have received SIGSEGV.
//
// Regions are mapped with guard gaps between them so that off-by-one and
// runaway accesses land in unmapped space rather than silently hitting a
// neighbouring mapping. The heap is deliberately a *single* region (see
// heap.hpp): overflow between allocations must corrupt silently, as it does
// on a real chunked allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/faults.hpp"

namespace healers::mem {

using Addr = std::uint64_t;

enum class Perm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

[[nodiscard]] constexpr bool allows(Perm have, Perm want) noexcept {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

enum class RegionKind : std::uint8_t {
  kHeapArena,
  kStack,
  kRodata,   // string literals, read-only tables
  kData,     // writable globals, simulated GOT
  kScratch,  // injector-provisioned test buffers
};

struct Region {
  Addr base = 0;
  std::uint64_t size = 0;
  Perm perm = Perm::kNone;
  RegionKind kind = RegionKind::kScratch;
  std::string label;
  std::vector<std::byte> bytes;
  // Half-open byte range written since the last snapshot()/restore(); lets a
  // restore copy back only what a probe actually touched. Clean when
  // dirty_lo >= dirty_hi.
  std::uint64_t dirty_lo = ~std::uint64_t{0};
  std::uint64_t dirty_hi = 0;

  [[nodiscard]] bool contains(Addr addr) const noexcept {
    return addr >= base && addr - base < size;
  }
  [[nodiscard]] Addr end() const noexcept { return base + size; }
  [[nodiscard]] bool dirty() const noexcept { return dirty_lo < dirty_hi; }
  void mark_dirty(std::uint64_t off, std::uint64_t len) noexcept {
    if (off < dirty_lo) dirty_lo = off;
    if (off + len > dirty_hi) dirty_hi = off + len;
  }
  void mark_clean() noexcept {
    dirty_lo = ~std::uint64_t{0};
    dirty_hi = 0;
  }
};

class AddressSpace {
 public:
  AddressSpace();

  // Maps a fresh region of `size` bytes (zero-filled). Base addresses are
  // assigned by a bump allocator with guard gaps. size must be > 0.
  Region& map(std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Maps at a caller-chosen base (used by tests to build precise layouts).
  // Throws std::invalid_argument on overlap with an existing region.
  Region& map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Unmaps the region with the given base. Subsequent accesses fault.
  void unmap(Addr base);

  // Region lookup; nullptr when the address is unmapped.
  [[nodiscard]] const Region* find(Addr addr) const noexcept;
  [[nodiscard]] Region* find(Addr addr) noexcept;

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }

  // Changes the permissions of an existing region (simulated mprotect).
  void protect(Addr base, Perm perm);

  // --- Access API (every call is one simulated access) ---
  // All of these throw AccessFault on unmapped addresses, permission
  // violations, or ranges that cross a region boundary.

  [[nodiscard]] std::uint8_t load8(Addr addr) const;
  void store8(Addr addr, std::uint8_t value);
  [[nodiscard]] std::uint64_t load64(Addr addr) const;  // little-endian
  void store64(Addr addr, std::uint64_t value);

  // Bulk helpers (bounds-checked as a whole, then copied).
  [[nodiscard]] std::vector<std::byte> read_bytes(Addr addr, std::uint64_t len) const;
  void write_bytes(Addr addr, const std::byte* data, std::uint64_t len);

  // Reads a NUL-terminated string starting at addr, faulting if the scan
  // leaves mapped readable memory before a NUL. max_len bounds the scan so a
  // missing terminator in a huge region surfaces as a hang upstream.
  [[nodiscard]] std::string read_cstring(Addr addr, std::uint64_t max_len = 1 << 20) const;

  // Copies a host string (plus NUL) into simulated memory.
  void write_cstring(Addr addr, std::string_view text);

  // Validates an access without performing it.
  void check(Addr addr, std::uint64_t len, Perm want) const;

  // True iff [addr, addr+len) is mapped with the requested permission.
  [[nodiscard]] bool accessible(Addr addr, std::uint64_t len, Perm want) const noexcept;

  // An address guaranteed unmapped forever (wild-pointer test value).
  [[nodiscard]] static constexpr Addr wild_pointer() noexcept { return 0xdeadbeef000ULL; }

  // --- snapshot / restore (the fault injector's process-reset primitive) ---
  // A snapshot captures every region (metadata + bytes) and the bump
  // allocator cursor. Taking a snapshot resets the dirty tracking, so a
  // space supports ONE active snapshot at a time: restore() copies back only
  // the byte ranges written since that snapshot (or since the last restore),
  // unmaps regions mapped after it, and remaps regions unmapped since.
  struct Snapshot {
    std::vector<Region> regions;  // sorted by base
    Addr next_base = 0;
  };
  [[nodiscard]] Snapshot snapshot();
  void restore(const Snapshot& snap);

 private:
  // Throws AccessFault unless [addr, addr+len) lies in one region with perm.
  const Region& checked(Addr addr, std::uint64_t len, Perm want) const;
  Region& checked_mut(Addr addr, std::uint64_t len, Perm want);

  std::map<Addr, Region> regions_;  // keyed by base
  Addr next_base_;
};

}  // namespace healers::mem
