// Simulated address space.
//
// This is the substrate that replaces hardware memory protection in the
// paper's setup (DESIGN.md, substitution table). Library code in simlib/
// performs every load and store through this class; the first access outside
// a mapped region, or against region permissions, raises AccessFault at
// exactly the point a real process would have received SIGSEGV.
//
// Regions are mapped with guard gaps between them so that off-by-one and
// runaway accesses land in unmapped space rather than silently hitting a
// neighbouring mapping. The heap is deliberately a *single* region (see
// heap.hpp): overflow between allocations must corrupt silently, as it does
// on a real chunked allocator.
//
// Fast path (DESIGN.md, "memory fast path"): region lookup goes through a
// small direct-mapped cache (a simulated TLB: a last-hit slot plus a few
// ways keyed by address page) in front of the std::map, and the span API
// below exposes whole accessible runs after a single boundary+permission
// check so hot consumers do not pay one map walk per byte. The cache is an
// invisible optimisation: it is flushed on every layout or permission
// mutation (map/map_at/unmap/protect/restore) and can be disabled entirely
// (set_region_cache_enabled) with no observable difference — tests enforce
// this.
//
// State storage is copy-on-write at page granularity (DESIGN.md, "COW
// testbed states"; cow.hpp has the sealed-page types). Each region keeps a
// full-size contiguous working buffer — so span pointers stay raw, stable
// and contiguous — plus two page bitmaps: `resident` (the working page holds
// valid bytes) and `private` (the working page diverged from the adopted
// image). Reads fault pages in from the image lazily; writes additionally
// privatize the touched pages. snapshot() seals private pages and shares the
// rest by refcount, and restore() drops private pages instead of copying
// bytes back, so both are O(pages touched), not O(address space).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "memmodel/cow.hpp"
#include "support/faults.hpp"

namespace healers::mem {

struct Region {
  Addr base = 0;
  std::uint64_t size = 0;
  Perm perm = Perm::kNone;
  RegionKind kind = RegionKind::kScratch;
  std::string label;

  [[nodiscard]] bool contains(Addr addr) const noexcept {
    return addr >= base && addr - base < size;
  }
  [[nodiscard]] Addr end() const noexcept { return base + size; }
  [[nodiscard]] std::uint64_t page_count() const noexcept {
    return (size + kCowPageSize - 1) >> kCowPageBits;
  }
  // A region is dirty when any of its pages diverged from the adopted image
  // (always true for regions mapped after the last snapshot()/restore(),
  // which are born fully private).
  [[nodiscard]] bool dirty() const noexcept { return private_count > 0; }
  [[nodiscard]] std::uint64_t private_pages() const noexcept { return private_count; }
  [[nodiscard]] std::uint64_t resident_pages() const noexcept { return resident_count; }

  // --- COW state (managed by AddressSpace; do not touch directly) ----------
  // `working` is the region's full-size contiguous byte buffer. It is never
  // reallocated while the region lives, so faulting or privatizing pages
  // never invalidates an outstanding span pointer. `resident`/`private_`
  // bitmaps say which pages of `working` are populated / have diverged from
  // `backing`, the region's sealed page table inside the space's adopted
  // image (nullptr for regions mapped after the last adoption; those are
  // born fully resident and private). Residency is a logically-const detail
  // of the lazy read barrier, hence the mutable qualifiers (same reasoning
  // as the region cache below).
  mutable std::vector<std::byte> working;
  const RegionImage* backing = nullptr;
  mutable std::vector<std::uint64_t> resident;
  std::vector<std::uint64_t> private_;
  mutable std::uint64_t resident_count = 0;
  std::uint64_t private_count = 0;
  mutable bool all_resident = false;

  [[nodiscard]] static bool test_bit(const std::vector<std::uint64_t>& bits,
                                     std::uint64_t i) noexcept {
    return (bits[i >> 6] >> (i & 63)) & 1;
  }
  // Sets bit i; returns true when it was previously clear.
  static bool set_bit(std::vector<std::uint64_t>& bits, std::uint64_t i) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool fresh = (bits[i >> 6] & mask) == 0;
    bits[i >> 6] |= mask;
    return fresh;
  }
};

class AddressSpace {
 public:
  AddressSpace();

  // Maps a fresh region of `size` bytes (zero-filled). Base addresses are
  // assigned by a bump allocator with guard gaps. size must be > 0.
  Region& map(std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Maps at a caller-chosen base (used by tests to build precise layouts).
  // Throws std::invalid_argument on overlap with an existing region.
  Region& map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Unmaps the region with the given base. Subsequent accesses fault.
  void unmap(Addr base);

  // Region lookup; nullptr when the address is unmapped.
  [[nodiscard]] const Region* find(Addr addr) const noexcept;
  [[nodiscard]] Region* find(Addr addr) noexcept;

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }

  // Read-only view of every mapped region, sorted by base address — the
  // "cat /proc/pid/maps" of the simulated process. Pointers are valid until
  // the next layout mutation (map/map_at/unmap/restore); consumers (the
  // incident dossier's region map, debug dumps) copy what they need.
  [[nodiscard]] std::vector<const Region*> region_map() const;

  // Changes the permissions of an existing region (simulated mprotect).
  void protect(Addr base, Perm perm);

  // --- Access API (every call is one simulated access) ---
  // All of these throw AccessFault on unmapped addresses, permission
  // violations, or ranges that cross a region boundary.

  [[nodiscard]] std::uint8_t load8(Addr addr) const;
  void store8(Addr addr, std::uint8_t value);
  [[nodiscard]] std::uint64_t load64(Addr addr) const;  // little-endian
  void store64(Addr addr, std::uint64_t value);

  // Bulk helpers (bounds-checked as a whole, then copied).
  [[nodiscard]] std::vector<std::byte> read_bytes(Addr addr, std::uint64_t len) const;
  void write_bytes(Addr addr, const std::byte* data, std::uint64_t len);

  // Loader backdoor: copies host bytes into a region IGNORING permissions —
  // how the simulated loader populates read-only segments (rodata interning,
  // the ctype table) before program code runs. Not a simulated access: no
  // ticks, no fault oracle, but the COW write barrier still applies so the
  // bytes survive snapshot/restore like any store. Throws std::logic_error
  // when the range does not sit inside one mapped region.
  void loader_fill(Addr addr, const void* data, std::uint64_t len);

  // --- span fast path -------------------------------------------------------
  // One boundary+permission check for a whole run, then a raw pointer into
  // the region's contiguous working buffer. Pointers are valid only until
  // the next layout mutation (map/map_at/unmap/restore) — consume them
  // immediately. Faulting pages in or privatizing them never moves the
  // buffer, so pointers survive other accesses in between.

  // Pointer to exactly [addr, addr+len); throws AccessFault like check()
  // when the run is unmapped, under-privileged, or crosses a region end.
  // len must be > 0.
  [[nodiscard]] const std::byte* span(Addr addr, std::uint64_t len, Perm want) const;

  // Writable pointer to [addr, addr+len); the whole run is privatized up
  // front (a superset of what the caller may actually write — pages it
  // leaves untouched are sealed again, bit-for-bit, by the next snapshot).
  // len must be > 0.
  [[nodiscard]] std::byte* mutable_span(Addr addr, std::uint64_t len);

  // Longest run accessible with `want` starting at addr (0 when addr itself
  // is not accessible). Bounded by the containing region; callers that must
  // mirror byte-at-a-time semantics across abutting regions re-query at the
  // returned boundary.
  [[nodiscard]] std::uint64_t span_extent(Addr addr, Perm want) const noexcept;

  // Longest run accessible with `want` ENDING at addr inclusive (for
  // backward copies): bytes [addr-r+1, addr].
  [[nodiscard]] std::uint64_t span_extent_back(Addr addr, Perm want) const noexcept;

  // memchr-based NUL scan from addr over readable memory (crossing abutting
  // regions exactly as a per-byte scan would), capped at `cap` bytes.
  // found  -> scanned = offset of the NUL.
  // !found -> scanned = readable bytes consumed; addr+scanned is the first
  //           unreadable byte unless scanned == cap (cap exhausted).
  struct TerminatorScan {
    bool found = false;
    std::uint64_t scanned = 0;
  };
  [[nodiscard]] TerminatorScan scan_terminator(Addr addr, std::uint64_t cap) const noexcept;

  // Reads a NUL-terminated string starting at addr, faulting if the scan
  // leaves mapped readable memory before a NUL. max_len bounds the scan so a
  // missing terminator in a huge region surfaces as a hang upstream.
  [[nodiscard]] std::string read_cstring(Addr addr, std::uint64_t max_len = 1 << 20) const;

  // Copies a host string (plus NUL) into simulated memory.
  void write_cstring(Addr addr, std::string_view text);

  // Validates an access without performing it.
  void check(Addr addr, std::uint64_t len, Perm want) const;

  // True iff [addr, addr+len) is mapped with the requested permission.
  [[nodiscard]] bool accessible(Addr addr, std::uint64_t len, Perm want) const noexcept;

  // An address guaranteed unmapped forever (wild-pointer test value).
  [[nodiscard]] static constexpr Addr wild_pointer() noexcept { return 0xdeadbeef000ULL; }

  // --- region cache controls ------------------------------------------------
  // The cache only changes lookup cost, never results; disabling it is the
  // reference behaviour the golden-tick tests compare against. Hit/miss
  // counters let benches and tests observe that the fast path is actually
  // taken.
  void set_region_cache_enabled(bool enabled) noexcept {
    cache_enabled_ = enabled;
    cache_flush();
  }
  [[nodiscard]] bool region_cache_enabled() const noexcept { return cache_enabled_; }
  [[nodiscard]] std::uint64_t region_cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t region_cache_misses() const noexcept { return cache_misses_; }

  // --- snapshot / restore (the fault injector's process-reset primitive) ---
  // A Snapshot is a refcounted handle to a sealed SpaceImage (cow.hpp):
  // snapshot() seals the pages written since the last adoption and shares
  // every other page with the previously adopted image by refcount, so its
  // cost is O(pages touched). Copying a Snapshot copies one shared_ptr —
  // ANY number of snapshots may coexist and each may be restored any number
  // of times, in any order; forked testbed states are exactly such handles.
  // restore() adopts the snapshot's image: private pages are dropped (never
  // copied back), regions mapped since are unmapped, regions unmapped since
  // reappear, and the bump allocator cursor rewinds, so a restored space is
  // bit-identical to the captured one. Pages are faulted back in lazily on
  // first access after the adoption.
  class Snapshot {
   public:
    Snapshot() = default;

    [[nodiscard]] bool valid() const noexcept { return image_ != nullptr; }
    [[nodiscard]] const std::shared_ptr<const SpaceImage>& image() const noexcept {
      return image_;
    }
    // Sealed region metadata, sorted by base — the snapshot-side analogue of
    // region_map() for tests and footprint accounting.
    [[nodiscard]] const std::vector<RegionImage>& regions() const { return image_->regions; }
    [[nodiscard]] Addr next_base() const { return image_->next_base; }

   private:
    friend class AddressSpace;
    explicit Snapshot(std::shared_ptr<const SpaceImage> image) : image_(std::move(image)) {}
    std::shared_ptr<const SpaceImage> image_;
  };
  [[nodiscard]] Snapshot snapshot();
  void restore(const Snapshot& snap);

  // COW event counters (see cow.hpp). Cumulative for this space's lifetime.
  [[nodiscard]] const CowStats& cow_stats() const noexcept { return cow_; }

 private:
  // Throws AccessFault unless [addr, addr+len) lies in one region with perm.
  const Region& checked(Addr addr, std::uint64_t len, Perm want) const;
  Region& checked_mut(Addr addr, std::uint64_t len, Perm want);

  // --- COW barriers ---------------------------------------------------------
  // Read barrier: ensures every page of [off, off+len) is resident in the
  // region's working buffer, copying from the adopted image on demand.
  // Bounds must already be validated. Logically const (see Region).
  void fault_in(const Region& region, std::uint64_t off, std::uint64_t len) const noexcept;
  // Write barrier: fault_in + mark the touched pages private.
  void privatize(Region& region, std::uint64_t off, std::uint64_t len) noexcept;
  // Seals page `p` of `region` (shares the global zero page for all-zero
  // content) — the snapshot-side half of the write barrier.
  [[nodiscard]] PageRef seal_page(const Region& region, std::uint64_t p);
  // Repoints every region at `image` (which snapshot() just built from the
  // live state) and clears private bits; residency is preserved because the
  // working buffers match the new image by construction.
  void adopt(const std::shared_ptr<const SpaceImage>& image);
  // Rebinds one surviving region to its sealed form in a restored image,
  // dropping private pages and keeping residency where the page refs agree.
  void reattach(Region& region, const RegionImage& ri);
  // Builds a live region from its sealed form (empty residency: pages fault
  // in lazily).
  [[nodiscard]] static Region materialize(const RegionImage& ri);

  // --- region cache (sim-TLB) ----------------------------------------------
  // Direct-mapped ways keyed by address page plus a last-hit slot. Entries
  // hold raw Region pointers (std::map nodes are stable until erased), so
  // every operation that can erase or re-create a node flushes the cache.
  // Negative lookups are never cached: a miss in a guard gap stays a miss.
  static constexpr unsigned kCachePageBits = 12;
  static constexpr unsigned kCacheWays = 8;  // power of two

  struct CacheWay {
    Addr page = ~Addr{0};
    Region* region = nullptr;
  };

  [[nodiscard]] Region* cache_lookup(Addr addr) const noexcept;
  void cache_fill(Addr addr, Region* region) const noexcept;
  void cache_flush() const noexcept {
    last_hit_ = nullptr;
    for (CacheWay& way : ways_) way = CacheWay{};
  }

  std::map<Addr, Region> regions_;  // keyed by base
  Addr next_base_;
  // The adopted image: what restore() rewinds to implicitly via Region
  // backing pointers. Held here so those pointers stay alive even after
  // every external Snapshot handle is dropped.
  std::shared_ptr<const SpaceImage> base_image_;
  mutable CowStats cow_;

  bool cache_enabled_ = true;
  // NOTE: the cache and the lazy read barrier make logically-const lookups
  // write these fields (and Region's mutable ones), so a single AddressSpace
  // must not be accessed from multiple threads. Every existing user (one
  // machine per testbed shell) already satisfies this; sealed SpaceImages,
  // by contrast, are immutable and safe to fork from concurrently.
  mutable Region* last_hit_ = nullptr;
  mutable CacheWay ways_[kCacheWays];
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

}  // namespace healers::mem
