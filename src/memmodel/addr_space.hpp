// Simulated address space.
//
// This is the substrate that replaces hardware memory protection in the
// paper's setup (DESIGN.md, substitution table). Library code in simlib/
// performs every load and store through this class; the first access outside
// a mapped region, or against region permissions, raises AccessFault at
// exactly the point a real process would have received SIGSEGV.
//
// Regions are mapped with guard gaps between them so that off-by-one and
// runaway accesses land in unmapped space rather than silently hitting a
// neighbouring mapping. The heap is deliberately a *single* region (see
// heap.hpp): overflow between allocations must corrupt silently, as it does
// on a real chunked allocator.
//
// Fast path (DESIGN.md, "memory fast path"): region lookup goes through a
// small direct-mapped cache (a simulated TLB: a last-hit slot plus a few
// ways keyed by address page) in front of the std::map, and the span API
// below exposes whole accessible runs after a single boundary+permission
// check so hot consumers do not pay one map walk per byte. The cache is an
// invisible optimisation: it is flushed on every layout or permission
// mutation (map/map_at/unmap/protect/restore) and can be disabled entirely
// (set_region_cache_enabled) with no observable difference — tests enforce
// this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/faults.hpp"

namespace healers::mem {

using Addr = std::uint64_t;

enum class Perm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

[[nodiscard]] constexpr bool allows(Perm have, Perm want) noexcept {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

enum class RegionKind : std::uint8_t {
  kHeapArena,
  kStack,
  kRodata,   // string literals, read-only tables
  kData,     // writable globals, simulated GOT
  kScratch,  // injector-provisioned test buffers
};

struct Region {
  Addr base = 0;
  std::uint64_t size = 0;
  Perm perm = Perm::kNone;
  RegionKind kind = RegionKind::kScratch;
  std::string label;
  std::vector<std::byte> bytes;
  // Half-open byte range written since the last snapshot()/restore(); lets a
  // restore copy back only what a probe actually touched. Clean when
  // dirty_lo >= dirty_hi.
  std::uint64_t dirty_lo = ~std::uint64_t{0};
  std::uint64_t dirty_hi = 0;

  [[nodiscard]] bool contains(Addr addr) const noexcept {
    return addr >= base && addr - base < size;
  }
  [[nodiscard]] Addr end() const noexcept { return base + size; }
  [[nodiscard]] bool dirty() const noexcept { return dirty_lo < dirty_hi; }
  void mark_dirty(std::uint64_t off, std::uint64_t len) noexcept {
    if (off < dirty_lo) dirty_lo = off;
    if (off + len > dirty_hi) dirty_hi = off + len;
  }
  void mark_clean() noexcept {
    dirty_lo = ~std::uint64_t{0};
    dirty_hi = 0;
  }
};

class AddressSpace {
 public:
  AddressSpace();

  // Maps a fresh region of `size` bytes (zero-filled). Base addresses are
  // assigned by a bump allocator with guard gaps. size must be > 0.
  Region& map(std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Maps at a caller-chosen base (used by tests to build precise layouts).
  // Throws std::invalid_argument on overlap with an existing region.
  Region& map_at(Addr base, std::uint64_t size, Perm perm, RegionKind kind, std::string label);

  // Unmaps the region with the given base. Subsequent accesses fault.
  void unmap(Addr base);

  // Region lookup; nullptr when the address is unmapped.
  [[nodiscard]] const Region* find(Addr addr) const noexcept;
  [[nodiscard]] Region* find(Addr addr) noexcept;

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }

  // Read-only view of every mapped region, sorted by base address — the
  // "cat /proc/pid/maps" of the simulated process. Pointers are valid until
  // the next layout mutation (map/map_at/unmap/restore); consumers (the
  // incident dossier's region map, debug dumps) copy what they need.
  [[nodiscard]] std::vector<const Region*> region_map() const;

  // Changes the permissions of an existing region (simulated mprotect).
  void protect(Addr base, Perm perm);

  // --- Access API (every call is one simulated access) ---
  // All of these throw AccessFault on unmapped addresses, permission
  // violations, or ranges that cross a region boundary.

  [[nodiscard]] std::uint8_t load8(Addr addr) const;
  void store8(Addr addr, std::uint8_t value);
  [[nodiscard]] std::uint64_t load64(Addr addr) const;  // little-endian
  void store64(Addr addr, std::uint64_t value);

  // Bulk helpers (bounds-checked as a whole, then copied).
  [[nodiscard]] std::vector<std::byte> read_bytes(Addr addr, std::uint64_t len) const;
  void write_bytes(Addr addr, const std::byte* data, std::uint64_t len);

  // --- span fast path -------------------------------------------------------
  // One boundary+permission check for a whole run, then a raw pointer into
  // the region's backing bytes. Pointers are valid only until the next
  // layout mutation (map/map_at/unmap/restore) — consume them immediately.

  // Pointer to exactly [addr, addr+len); throws AccessFault like check()
  // when the run is unmapped, under-privileged, or crosses a region end.
  // len must be > 0.
  [[nodiscard]] const std::byte* span(Addr addr, std::uint64_t len, Perm want) const;

  // Writable pointer to [addr, addr+len); the whole run is marked dirty up
  // front (batched mark_dirty — a superset of what the caller may actually
  // write, which restore() copies back harmlessly). len must be > 0.
  [[nodiscard]] std::byte* mutable_span(Addr addr, std::uint64_t len);

  // Longest run accessible with `want` starting at addr (0 when addr itself
  // is not accessible). Bounded by the containing region; callers that must
  // mirror byte-at-a-time semantics across abutting regions re-query at the
  // returned boundary.
  [[nodiscard]] std::uint64_t span_extent(Addr addr, Perm want) const noexcept;

  // Longest run accessible with `want` ENDING at addr inclusive (for
  // backward copies): bytes [addr-r+1, addr].
  [[nodiscard]] std::uint64_t span_extent_back(Addr addr, Perm want) const noexcept;

  // memchr-based NUL scan from addr over readable memory (crossing abutting
  // regions exactly as a per-byte scan would), capped at `cap` bytes.
  // found  -> scanned = offset of the NUL.
  // !found -> scanned = readable bytes consumed; addr+scanned is the first
  //           unreadable byte unless scanned == cap (cap exhausted).
  struct TerminatorScan {
    bool found = false;
    std::uint64_t scanned = 0;
  };
  [[nodiscard]] TerminatorScan scan_terminator(Addr addr, std::uint64_t cap) const noexcept;

  // Reads a NUL-terminated string starting at addr, faulting if the scan
  // leaves mapped readable memory before a NUL. max_len bounds the scan so a
  // missing terminator in a huge region surfaces as a hang upstream.
  [[nodiscard]] std::string read_cstring(Addr addr, std::uint64_t max_len = 1 << 20) const;

  // Copies a host string (plus NUL) into simulated memory.
  void write_cstring(Addr addr, std::string_view text);

  // Validates an access without performing it.
  void check(Addr addr, std::uint64_t len, Perm want) const;

  // True iff [addr, addr+len) is mapped with the requested permission.
  [[nodiscard]] bool accessible(Addr addr, std::uint64_t len, Perm want) const noexcept;

  // An address guaranteed unmapped forever (wild-pointer test value).
  [[nodiscard]] static constexpr Addr wild_pointer() noexcept { return 0xdeadbeef000ULL; }

  // --- region cache controls ------------------------------------------------
  // The cache only changes lookup cost, never results; disabling it is the
  // reference behaviour the golden-tick tests compare against. Hit/miss
  // counters let benches and tests observe that the fast path is actually
  // taken.
  void set_region_cache_enabled(bool enabled) noexcept {
    cache_enabled_ = enabled;
    cache_flush();
  }
  [[nodiscard]] bool region_cache_enabled() const noexcept { return cache_enabled_; }
  [[nodiscard]] std::uint64_t region_cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t region_cache_misses() const noexcept { return cache_misses_; }

  // --- snapshot / restore (the fault injector's process-reset primitive) ---
  // A snapshot captures every region (metadata + bytes) and the bump
  // allocator cursor. Taking a snapshot resets the dirty tracking, so a
  // space supports ONE active snapshot at a time: restore() copies back only
  // the byte ranges written since that snapshot (or since the last restore),
  // unmaps regions mapped after it, and remaps regions unmapped since.
  struct Snapshot {
    std::vector<Region> regions;  // sorted by base
    Addr next_base = 0;
  };
  [[nodiscard]] Snapshot snapshot();
  void restore(const Snapshot& snap);

 private:
  // Throws AccessFault unless [addr, addr+len) lies in one region with perm.
  const Region& checked(Addr addr, std::uint64_t len, Perm want) const;
  Region& checked_mut(Addr addr, std::uint64_t len, Perm want);

  // --- region cache (sim-TLB) ----------------------------------------------
  // Direct-mapped ways keyed by address page plus a last-hit slot. Entries
  // hold raw Region pointers (std::map nodes are stable until erased), so
  // every operation that can erase or re-create a node flushes the cache.
  // Negative lookups are never cached: a miss in a guard gap stays a miss.
  static constexpr unsigned kCachePageBits = 12;
  static constexpr unsigned kCacheWays = 8;  // power of two

  struct CacheWay {
    Addr page = ~Addr{0};
    Region* region = nullptr;
  };

  [[nodiscard]] Region* cache_lookup(Addr addr) const noexcept;
  void cache_fill(Addr addr, Region* region) const noexcept;
  void cache_flush() const noexcept {
    last_hit_ = nullptr;
    for (CacheWay& way : ways_) way = CacheWay{};
  }

  std::map<Addr, Region> regions_;  // keyed by base
  Addr next_base_;

  bool cache_enabled_ = true;
  // NOTE: the cache makes logically-const lookups write these fields, so a
  // single AddressSpace must not be read from multiple threads. Every
  // existing user (one machine per testbed worker) already satisfies this.
  mutable Region* last_hit_ = nullptr;
  mutable CacheWay ways_[kCacheWays];
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

}  // namespace healers::mem
