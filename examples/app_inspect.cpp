// Demo §3.2 / Fig 4: application-centric inspection.
//
// "It allows a user to browse through the list of files in the current
// system and select an application program. Our toolkit can automatically
// extract the list of libraries linked to this application as well as the
// list of undefined functions in the application."
//
// We inspect the demo victims and a hand-built app with an unresolvable
// import, and also show the library-centric view (§3.1): per-library
// function lists and the XML declaration file.
//
// Build & run:  ./build/examples/app_inspect
#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"

using namespace healers;

int main() {
  core::Toolkit toolkit;

  // --- the "system" view (§3.1) --------------------------------------------
  std::printf("libraries installed in the system:\n");
  for (const std::string& soname : toolkit.list_libraries()) {
    std::printf("  %s\n", soname.c_str());
  }

  std::printf("\nfunctions defined in libsimm.so.1:\n ");
  const auto functions = toolkit.list_functions("libsimm.so.1");
  for (const std::string& fn : functions.value()) {
    std::printf(" %s", fn.c_str());
  }
  const auto decls = toolkit.declaration_xml("libsimm.so.1");
  std::printf("\n\nXML declaration file for libsimm.so.1:\n%s\n",
              xml::serialize(decls.value()).c_str());

  // --- the application view (§3.2, Fig 4) ----------------------------------
  std::printf("%s\n", toolkit.inspect(attacks::heap_victim_executable()).to_text().c_str());
  std::printf("%s\n", toolkit.inspect(attacks::stack_victim_executable()).to_text().c_str());

  // An app with a missing import: the map shows the unresolved symbol.
  linker::Executable legacy;
  legacy.name = "legacy-billing";
  legacy.needed = {"libsimc.so.1", "libsimm.so.1"};
  legacy.undefined = {"strcpy", "sqrt", "gethostbyname", "atoi"};
  legacy.entry = [](linker::Process&) { return 0; };
  const linker::LinkMap map = toolkit.inspect(legacy);
  std::printf("%s", map.to_text().c_str());
  std::printf("unresolved: %zu symbol(s)\n\n", map.unresolved.size());

  // Dynamic cross-check: does the demo daemon's declared import list match
  // what it actually calls? (Stale lists are how Fig 4 views rot.)
  const auto missing =
      linker::validate_executable(attacks::heap_victim_executable(), toolkit.catalog());
  if (missing.empty()) {
    std::printf("netd import list verified: every called symbol is declared\n");
  } else {
    std::printf("netd import list is STALE; undeclared calls:");
    for (const std::string& symbol : missing) std::printf(" %s", symbol.c_str());
    std::printf("\n");
  }
  return 0;
}
