// Hardening-as-a-service, end to end: a multi-client load generator in
// front of one DeriveServer.
//
// Eight client threads each fire a burst of requests at the service —
// mostly the SAME derive request (the thundering-herd case: every host in a
// fleet asking for libsimio's robust API at once), plus a couple of wrapper
// bundle requests. The server groups the herd into one single flight, runs
// exactly one campaign, and answers every ticket with shared bytes; a
// second, "restarted" server warmed from the serialized spec cache answers
// the same trace with zero probes.
//
// Build & run:  cmake --build build -j --target derive_service_demo
//               ./build/examples/derive_service_demo
#include <cassert>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/toolkit.hpp"
#include "server/derive_server.hpp"
#include "server/protocol.hpp"
#include "server/spec_cache.hpp"

using namespace healers;

namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 4;

server::DeriveRequest derive_request() {
  server::DeriveRequest request;
  request.soname = "libsimio.so.1";
  request.seed = 21;
  request.variants = 1;
  request.format = server::WireFormat::kBinary;
  return request;
}

// One client's burst: the shared derive request, then a bundle of its own.
std::vector<server::DeriveServer::Ticket> run_client(server::DeriveServer& srv, int client) {
  std::vector<server::DeriveServer::Ticket> tickets;
  for (int i = 0; i < kRequestsPerClient - 1; ++i) {
    tickets.push_back(srv.submit(derive_request().encode()));
  }
  auto bundle = derive_request();
  bundle.endpoint = server::Endpoint::kBundle;
  bundle.bundle = client % 2 == 0 ? server::BundleKind::kSecurity : server::BundleKind::kProfiling;
  tickets.push_back(srv.submit(bundle.encode()));
  return tickets;
}

std::uint64_t serve_concurrently(const core::Toolkit& toolkit, const char* label) {
  server::ServerConfig config;
  config.workers = 4;
  server::DeriveServer srv(toolkit, config);

  std::vector<std::vector<server::DeriveServer::Ticket>> tickets(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&srv, &tickets, c] { tickets[c] = run_client(srv, c); });
  }
  for (auto& client : clients) client.join();
  srv.drain();

  // Every ticket is answered, and the herd's tickets all share one response.
  std::shared_ptr<const std::string> herd_bytes;
  for (const auto& per_client : tickets) {
    for (const auto ticket : per_client) {
      const auto bytes = srv.response(ticket);
      assert(bytes != nullptr);
      const auto response = server::DeriveResponse::decode(*bytes);
      assert(response.ok() && response.value().status == server::ResponseStatus::kOk);
      (void)response;
      if (*bytes == *srv.response(tickets[0][0])) herd_bytes = bytes;
    }
  }
  assert(herd_bytes != nullptr);

  std::printf("--- %s ---\n%s\n", label, srv.render_summary().c_str());
  return toolkit.probes_executed();
}

}  // namespace

int main() {
  std::printf("derive_service_demo: %d clients x %d requests\n\n", kClients, kRequestsPerClient);

  // Cold service: the herd triggers exactly one campaign (single flight).
  core::Toolkit toolkit;
  const std::uint64_t cold_probes = serve_concurrently(toolkit, "cold server");
  std::printf("probes executed: %llu (one campaign, despite %d identical requests)\n\n",
              static_cast<unsigned long long>(cold_probes), kClients * (kRequestsPerClient - 1));
  assert(cold_probes > 0);

  // Restarted service: warm a fresh toolkit from the serialized spec cache;
  // the same trace now costs zero probes.
  const std::string image = server::encode_cache_file(toolkit.export_campaigns());
  core::Toolkit restarted;
  const auto entries = server::decode_cache_file(image);
  assert(entries.ok());
  const std::size_t admitted = restarted.import_campaigns(entries.value());
  std::printf("spec cache: %zu bytes on the wire, %zu entries admitted\n\n", image.size(),
              admitted);
  const std::uint64_t warm_probes = serve_concurrently(restarted, "restarted server, cache-warmed");
  std::printf("probes executed after restart: %llu\n",
              static_cast<unsigned long long>(warm_probes));
  assert(warm_probes == 0);

  std::printf("\ndone: single-flight held cold cost to one campaign; the cache file held the\n"
              "restarted server to zero.\n");
  return 0;
}
