// Fig 2 in detail: the robust-API derivation pipeline, function by function.
//
// Shows the per-test-type verdicts the fault injector records for a few
// instructive functions, the derived safe argument types, the emitted
// Fig 3-style wrapper source for wctrans (the paper's running example), and
// the XML robust-API spec round-trip.
//
// Build & run:  ./build/examples/robust_api_tour
#include <cstdio>

#include "core/toolkit.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;

namespace {

void show_spec(const injector::RobustSpec& spec) {
  std::printf("%s  —  %s\n", spec.function.c_str(), spec.declaration.c_str());
  std::printf("  %llu probes, %llu failures (%llu crash / %llu hang / %llu abort)\n",
              static_cast<unsigned long long>(spec.total_probes),
              static_cast<unsigned long long>(spec.total_failures),
              static_cast<unsigned long long>(spec.crashes),
              static_cast<unsigned long long>(spec.hangs),
              static_cast<unsigned long long>(spec.aborts));
  for (const injector::ArgSpec& arg : spec.args) {
    std::printf("  arg %d (%s): safe type = %s\n", arg.index, arg.ctype.c_str(),
                arg.safe_type_name().c_str());
    for (const injector::TypeVerdict& v : arg.verdicts) {
      if (!v.failed()) continue;
      std::printf("    FAILS on %-18s (%d/%d probes)  e.g. %s\n",
                  lattice::to_string(v.id).c_str(), v.failures, v.probes,
                  v.first_failure.substr(0, 60).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Toolkit toolkit;
  injector::InjectorConfig config;
  config.seed = 2003;  // DSN 2003
  config.variants = 2;

  const auto campaign = toolkit.derive_robust_api("libsimc.so.1", config).value();
  std::printf("%s\n", campaign.to_table().c_str());

  // A tour through instructive profiles.
  for (const char* name : {"strcpy", "strcat", "atoi", "isalpha", "free", "wctrans"}) {
    show_spec(*campaign.spec(name));
  }

  // The paper's Fig 3: the generated wrapper function for wctrans.
  const simlib::SharedLibrary* lib = toolkit.library("libsimc.so.1");
  const simlib::Symbol* wctrans = lib->find("wctrans");
  auto page = parser::parse_manpage(wctrans->manpage).value();
  gen::GenContext ctx{page.proto, 1206, campaign.spec("wctrans"), &page};
  std::printf("Fig 3 — generated wrapper for wctrans:\n%s\n",
              gen::emit_wrapper_source(ctx, wrappers::fig3_generators()).c_str());

  // Robust-API specs are exchanged as XML; round-trip one.
  const std::string doc = xml::serialize(campaign.spec("strcpy")->to_xml());
  std::printf("robust-spec XML for strcpy:\n%s\n", doc.c_str());
  const auto reparsed = injector::RobustSpec::from_xml(xml::parse(doc).value());
  std::printf("round-trip: %s (%llu probes)\n", reparsed.value().function.c_str(),
              static_cast<unsigned long long>(reparsed.value().total_probes));
  return 0;
}
