// Fleet telemetry demo: the §2.3 collection story at fleet scale.
//
// A simulated fleet of hosts runs wrapped apps through the linker; each app
// run emits a profile document (XML or the compact binary wire format). The
// sharded FleetCollector ingests them in batches on a thread pool, keeps
// per-function totals incrementally, and answers snapshot queries — with the
// rendered summary byte-identical for ANY shard or worker count.
//
// Build & run:  ./build/examples/fleet_demo
#include <cstdio>

#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "fleet/simulator.hpp"
#include "fleet/wire.hpp"

using namespace healers;

int main() {
  core::Toolkit toolkit;

  // Producers: 6 hosts x 20 app runs, half XML / half binary documents.
  fleet::SimulatorConfig sim_config;
  sim_config.hosts = 6;
  sim_config.docs_per_host = 20;
  sim_config.jobs = 0;  // all cores
  const fleet::FleetSimulator simulator(toolkit, sim_config);
  const auto documents = simulator.run();
  std::size_t binary = 0;
  std::size_t bytes = 0;
  for (const auto& doc : documents) {
    if (fleet::is_binary_document(doc)) ++binary;
    bytes += doc.size();
  }
  std::printf("fleet: %u hosts emitted %zu documents (%zu binary, %zu XML, %zu bytes)\n\n",
              sim_config.hosts, documents.size(), binary, documents.size() - binary, bytes);

  // Ingest: sharded queues, batched decode, incremental aggregation.
  fleet::CollectorConfig config;
  config.shards = 4;
  config.workers = 0;  // all cores
  fleet::FleetCollector collector(config);
  for (const auto& doc : documents) collector.submit(doc);
  collector.flush();
  std::printf("%s\n", collector.render_summary().c_str());

  // The determinism guarantee, demonstrated: a 1-shard, 1-worker collector
  // renders the byte-identical summary.
  fleet::FleetCollector sequential(fleet::CollectorConfig{.shards = 1, .workers = 1});
  for (const auto& doc : documents) sequential.submit(doc);
  sequential.flush();
  const bool identical = sequential.render_summary() == collector.render_summary();
  std::printf("1-shard/1-worker summary identical: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
