// Demo §3.4: buffer-overflow attacks and the security wrapper.
//
// Phase 1 — unprotected: a simulated network daemon copies an
// attacker-crafted message into a heap buffer; the overflow rewrites the
// neighbouring chunk header, the daemon's own free() executes the unsafe
// unlink, and the next library call jumps into attacker memory ("root
// shell"). A stack-smashing variant overruns a frame's return address.
//
// Phase 2 — protected: the same attacks against the same daemons with the
// HEALERS security wrapper preloaded. The wrapper's canaries / stack bounds
// detect the overflow and terminate the process before the hijack.
//
// Build & run:  ./build/examples/overflow_demo
#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"

using namespace healers;

namespace {

void show(const char* title, const attacks::AttackResult& result) {
  std::printf("=== %s ===\n%s", title, result.narrative.c_str());
  if (result.hijack_succeeded) {
    std::printf(">>> ATTACK SUCCEEDED: attacker controls the process\n");
  } else if (result.blocked_by_wrapper) {
    std::printf(">>> ATTACK BLOCKED: security wrapper terminated the process\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Toolkit toolkit;

  // Unprotected runs: both attacks succeed.
  const auto heap_plain = attacks::run_heap_smash_attack(toolkit.catalog(), {});
  show("heap smashing, no wrapper", heap_plain);
  const auto stack_plain = attacks::run_stack_smash_attack(toolkit.catalog(), {});
  show("stack smashing, no wrapper", stack_plain);

  // Protected runs: fresh security wrapper per process (it tracks that
  // process's allocations).
  auto wrapper1 = toolkit.security_wrapper("libsimc.so.1");
  const auto heap_guarded =
      attacks::run_heap_smash_attack(toolkit.catalog(), {wrapper1.value()});
  show("heap smashing, security wrapper preloaded", heap_guarded);

  auto wrapper2 = toolkit.security_wrapper("libsimc.so.1");
  const auto stack_guarded =
      attacks::run_stack_smash_attack(toolkit.catalog(), {wrapper2.value()});
  show("stack smashing, security wrapper preloaded", stack_guarded);

  const bool ok = heap_plain.hijack_succeeded && stack_plain.hijack_succeeded &&
                  heap_guarded.blocked_by_wrapper && stack_guarded.blocked_by_wrapper;
  std::printf("demo verdict: %s\n", ok ? "as published (attacks succeed unprotected, "
                                         "blocked by the security wrapper)"
                                       : "UNEXPECTED — see narratives above");
  return ok ? 0 : 1;
}
