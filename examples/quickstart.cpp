// Quickstart: the whole HEALERS pipeline in one sitting.
//
//   1. list the installed shared libraries and a library's functions,
//   2. derive a robust API for a few functions by fault injection,
//   3. generate a robustness wrapper from the results,
//   4. run the same broken program unprotected (it dies) and protected
//      (the wrapper contains the fault and the program finishes).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/toolkit.hpp"

using namespace healers;

int main() {
  core::Toolkit toolkit;

  // --- 1. what is installed? ----------------------------------------------
  std::printf("installed libraries:\n");
  for (const std::string& soname : toolkit.list_libraries()) {
    const auto functions = toolkit.list_functions(soname);
    std::printf("  %-16s %zu functions\n", soname.c_str(), functions.value().size());
  }

  // --- 2. derive the robust API of libsimc by fault injection --------------
  injector::InjectorConfig config;
  config.seed = 7;
  config.variants = 1;  // keep the quickstart quick
  std::printf("\nrunning fault-injection campaign against libsimc.so.1 ...\n");
  auto campaign = toolkit.derive_robust_api("libsimc.so.1", config);
  if (!campaign.ok()) {
    std::printf("campaign failed: %s\n", campaign.error().message.c_str());
    return 1;
  }
  std::printf("%llu probes, %llu robustness failures in %zu of %zu functions\n",
              static_cast<unsigned long long>(campaign.value().total_probes()),
              static_cast<unsigned long long>(campaign.value().total_failures()),
              campaign.value().functions_with_failures(), campaign.value().specs.size());
  const injector::RobustSpec* strcpy_spec = campaign.value().spec("strcpy");
  std::printf("derived for strcpy: arg1 = %s; arg2 = %s\n",
              strcpy_spec->args[0].safe_type_name().c_str(),
              strcpy_spec->args[1].safe_type_name().c_str());

  // --- 3. generate the robustness wrapper ---------------------------------
  auto wrapper = toolkit.robustness_wrapper("libsimc.so.1", campaign.value());
  std::printf("\ngenerated %s over %zu functions\n", wrapper.value()->name().c_str(),
              wrapper.value()->wrapped_count());

  // --- 4. a buggy program, unprotected vs protected ------------------------
  linker::Executable buggy;
  buggy.name = "buggy";
  buggy.needed = {"libsimc.so.1"};
  buggy.undefined = {"strcpy", "strlen", "atoi"};
  buggy.entry = [](linker::Process& p) {
    using simlib::SimValue;
    // A classic API failure: strlen(NULL) — the config string is missing.
    const SimValue len = p.call("strlen", {SimValue::null()});
    return static_cast<int>(len.as_int());
  };

  auto unprotected = toolkit.spawn(buggy);
  const linker::CallOutcome plain = unprotected->run(buggy.entry);
  std::printf("\nunprotected run: %s\n", plain.to_string().c_str());

  auto protected_proc = toolkit.spawn(buggy, {wrapper.value()});
  const linker::CallOutcome contained = protected_proc->run(buggy.entry);
  std::printf("protected run:   %s  (wrapper contained %llu call(s))\n",
              contained.to_string().c_str(),
              static_cast<unsigned long long>(wrapper.value()->stats()->total_contained()));

  return plain.robustness_failure() && !contained.robustness_failure() ? 0 : 1;
}
