// Repair-mode walkthrough (ISSUE 9): the §3.4 heap overflow attack under the
// three response postures HEALERS can take, side by side.
//
// Phase 1 — unprotected victim: the overflow rewrites a chunk header, the
// victim's own free() performs the unlink's arbitrary write, and the next
// library call jumps through the rewritten GOT slot (control-flow hijack).
//
// Phase 2 — security wrapper: detect-and-terminate. The heap canary trips and
// the process aborts before the hijack — safe, but the request dies with it.
//
// Phase 3 — repair wrapper: the campaign-derived policy clamps the memcpy
// length to the destination's 64-byte extent (failure-oblivious truncation),
// the fake chunk header is never written, free() is ordinary, and the victim
// completes its request with correct output. The flight recorder's dossier
// carries the applied RepairEvent instead of a crash.
//
// Build & run:  ./build/examples/repair_demo
#include <cstdio>
#include <cstring>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "incident/recorder.hpp"

using namespace healers;

int main() {
  core::Toolkit toolkit;

  // --- phase 1: unprotected ------------------------------------------------
  const auto plain = attacks::run_heap_smash_attack(toolkit.catalog(), {});
  std::printf("=== unprotected victim ===\n%s\n", plain.narrative.c_str());

  // --- phase 2: security wrapper (detect, terminate) -----------------------
  auto security = toolkit.security_wrapper("libsimc.so.1");
  const auto guarded = attacks::run_heap_smash_attack(toolkit.catalog(), {security.value()});
  std::printf("=== security wrapper (detect) ===\n%s\n", guarded.narrative.c_str());

  // --- phase 3: repair wrapper (survive) -----------------------------------
  const auto campaign = toolkit.derive_robust_api("libsimc.so.1");
  if (!campaign.ok()) {
    std::printf("campaign failed: %s\n", campaign.error().message.c_str());
    return 1;
  }
  auto repair = toolkit.repair_wrapper("libsimc.so.1", campaign.value());
  if (!repair.ok()) {
    std::printf("repair wrapper failed: %s\n", repair.error().message.c_str());
    return 1;
  }
  incident::FlightRecorder recorder;
  recorder.set_process_name("netd");
  const auto repaired =
      attacks::run_heap_smash_attack(toolkit.catalog(), {repair.value()}, false, &recorder);
  std::printf("=== repair wrapper (survive) ===\n%s\n", repaired.narrative.c_str());
  std::printf("victim stdout: %s", repaired.stdout_text.c_str());
  std::printf("repairs applied: %llu\n",
              static_cast<unsigned long long>(recorder.repairs_applied()));
  for (const incident::RepairEvent& event : recorder.repair_log()) {
    std::printf("  #%llu %s %s requested=%llu granted=%llu\n",
                static_cast<unsigned long long>(event.seq), event.symbol.c_str(),
                simlib::to_string(event.action).c_str(),
                static_cast<unsigned long long>(event.requested),
                static_cast<unsigned long long>(event.granted));
  }

  const bool ok = plain.hijack_succeeded && guarded.blocked_by_wrapper && repaired.survived &&
                  repaired.stdout_text.find("request handled") != std::string::npos &&
                  recorder.repairs_applied() == 1;
  std::printf("\ndemo verdict: %s\n",
              ok ? "hijacked unprotected, terminated under detection, survived under repair"
                 : "UNEXPECTED — see output above");
  return ok ? 0 : 1;
}
