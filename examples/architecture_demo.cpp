// Fig 1 of the paper, executed: three applications over the same shared
// libraries, each with the wrapper its role demands —
//
//   root process      -> security wrapper   (buffer-overflow prevention)
//   user application  -> robustness wrapper (contain API failures)
//   user application  -> profiling wrapper  (error/frequency statistics)
//
// and, as the figure notes, applications may also SHARE a wrapper: the two
// user applications are additionally run over one shared profiling wrapper
// whose statistics then aggregate both.
//
// Build & run:  ./build/examples/architecture_demo
#include <cstdio>

#include "core/toolkit.hpp"
#include "profile/report.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

// A root daemon: parses a request, copies it around, allocates.
linker::Executable root_daemon() {
  linker::Executable exe;
  exe.name = "rootd";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"malloc", "free", "strcpy", "strlen"};
  exe.entry = [](linker::Process& p) {
    const mem::Addr req = p.alloc_cstring("GET /status");
    const mem::Addr copy = p.call("malloc", {SimValue::integer(32)}).as_ptr();
    p.call("strcpy", {SimValue::ptr(copy), SimValue::ptr(req)});
    const auto len = p.call("strlen", {SimValue::ptr(copy)});
    p.call("free", {SimValue::ptr(copy)});
    p.call("free", {SimValue::ptr(req)});
    return static_cast<int>(len.as_int());
  };
  return exe;
}

// A flaky user app: occasionally passes bad arguments (missing config).
linker::Executable flaky_app() {
  linker::Executable exe;
  exe.name = "reportgen";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"fopen", "fgets", "fclose", "atoi", "strlen"};
  exe.entry = [](linker::Process& p) {
    // Config file does not exist: fopen fails ...
    const auto file = p.call("fopen", {SimValue::ptr(p.rodata_cstring("/etc/reportgen.conf")),
                                       SimValue::ptr(p.rodata_cstring("r"))});
    if (file.as_ptr() == 0) {
      // ... and the unchecked NULL propagates into strlen — the classic
      // crash a robustness wrapper turns into an error return.
      const auto n = p.call("strlen", {SimValue::null()});
      return static_cast<int>(n.as_int());
    }
    p.call("fclose", {file});
    return 0;
  };
  return exe;
}

// A healthy workload app for profiling.
linker::Executable worker_app() {
  linker::Executable exe;
  exe.name = "worker";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"strcpy", "strlen", "atoi", "fopen", "fputs", "fclose"};
  exe.entry = [](linker::Process& p) {
    for (int i = 0; i < 20; ++i) {
      const mem::Addr buf = p.scratch(64);
      p.call("strcpy", {SimValue::ptr(buf), SimValue::ptr(p.rodata_cstring("item-12345"))});
      p.call("strlen", {SimValue::ptr(buf)});
      p.call("atoi", {SimValue::ptr(p.rodata_cstring("12345"))});
    }
    // One error: opening a missing file (ENOENT shows up in the profile).
    p.call("fopen", {SimValue::ptr(p.rodata_cstring("/no/such/file")),
                     SimValue::ptr(p.rodata_cstring("r"))});
    return 0;
  };
  return exe;
}

}  // namespace

int main() {
  core::Toolkit toolkit;

  std::printf("Fig 1: applications | wrappers | shared libraries\n\n");

  // Root process with the security wrapper.
  auto security = toolkit.security_wrapper("libsimc.so.1").value();
  auto rootd = toolkit.spawn(root_daemon(), {security});
  const auto root_outcome = rootd->run(root_daemon().entry);
  std::printf("rootd      + security wrapper   -> %s\n", root_outcome.to_string().c_str());

  // Flaky user app with the robustness wrapper (needs the derived API).
  injector::InjectorConfig cfg;
  cfg.variants = 1;
  auto campaign = toolkit.derive_robust_api("libsimc.so.1", cfg).value();
  auto robustness = toolkit.robustness_wrapper("libsimc.so.1", campaign).value();
  auto flaky = toolkit.spawn(flaky_app(), {robustness});
  const auto flaky_outcome = flaky->run(flaky_app().entry);
  std::printf("reportgen  + robustness wrapper -> %s (contained %llu)\n",
              flaky_outcome.to_string().c_str(),
              static_cast<unsigned long long>(robustness->stats()->total_contained()));

  // Worker with its own profiling wrapper.
  auto profiling = toolkit.profiling_wrapper("libsimc.so.1").value();
  auto worker = toolkit.spawn(worker_app(), {profiling});
  worker->run(worker_app().entry);
  std::printf("worker     + profiling wrapper  -> %llu calls profiled\n\n",
              static_cast<unsigned long long>(profiling->stats()->total_calls()));

  // SHARED wrapper: both user apps over one profiling wrapper instance.
  auto shared = toolkit.profiling_wrapper("libsimc.so.1").value();
  toolkit.spawn(flaky_app(), {shared})->run(flaky_app().entry);
  toolkit.spawn(worker_app(), {shared})->run(worker_app().entry);
  const auto report = profile::build_report("flaky+worker", shared->name(), *shared->stats());
  std::printf("shared profiling wrapper across both apps:\n%s\n", profile::render(report).c_str());

  return 0;
}
