// Incident flight recorder walkthrough (ISSUE 4): the §3.4 heap overflow
// attack end to end, with a FlightRecorder attached to the victim process.
//
// Phase 1 — unprotected victim: the attack's unsafe unlink rewrites the GOT;
// the recorder's on_fault hook never fires (the terminal outcome is a
// control-flow hijack, not an AccessFault), but the ring buffer still holds
// the complete call trace leading into the exploit.
//
// Phase 2 — security wrapper preloaded: the wrapper's heap canary trips
// during the victim's own cleanup. The recorder snapshots a crash dossier at
// the detection point: offending call, decoded arguments, last-N trace,
// heap-chunk neighborhood with the corrupted allocation marked, region map.
//
// Phase 3 — the dossier ships to a FleetCollector over the same wire as
// profile documents, and the fleet summary counts it.
//
// Build & run:  ./build/examples/incident_demo
#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "fleet/wire.hpp"
#include "incident/recorder.hpp"

using namespace healers;

int main() {
  core::Toolkit toolkit;

  // --- phase 1: unprotected, recorder attached -----------------------------
  incident::FlightRecorder plain_recorder;
  plain_recorder.set_process_name("netd");
  const auto plain =
      attacks::run_heap_smash_attack(toolkit.catalog(), {}, false, &plain_recorder);
  std::printf("=== unprotected victim ===\n%s", plain.narrative.c_str());
  std::printf("recorder saw %llu wrapped calls; last-N trace:\n",
              static_cast<unsigned long long>(plain_recorder.calls_seen()));
  for (const incident::TraceEntry& entry : plain_recorder.trace()) {
    std::printf("  #%llu %s/%u\n", static_cast<unsigned long long>(entry.seq),
                entry.symbol.c_str(), entry.argc);
  }
  std::printf("dossiers captured: %llu (hijack is not a detector firing)\n\n",
              static_cast<unsigned long long>(plain_recorder.detections()));

  // --- phase 2: security wrapper + recorder --------------------------------
  incident::FlightRecorder recorder;
  recorder.set_process_name("netd");
  auto wrapper = toolkit.security_wrapper("libsimc.so.1");
  const auto guarded =
      attacks::run_heap_smash_attack(toolkit.catalog(), {wrapper.value()}, false, &recorder);
  std::printf("=== security wrapper preloaded ===\n%s\n", guarded.narrative.c_str());
  if (recorder.dossiers().empty()) {
    std::printf("UNEXPECTED: no dossier captured\n");
    return 1;
  }
  const incident::Dossier& dossier = recorder.dossiers().front();
  std::printf("%s\n", dossier.to_text().c_str());

  // --- phase 3: ship the dossier fleet-ward --------------------------------
  fleet::FleetCollector collector;
  collector.submit(fleet::encode_dossier_binary(dossier));
  collector.flush();
  std::printf("%s", collector.render_summary().c_str());

  const bool ok = plain.hijack_succeeded && guarded.blocked_by_wrapper &&
                  recorder.detections() > 0 && collector.aggregated() == 1;
  std::printf("\ndemo verdict: %s\n",
              ok ? "dossier captured at the detection point and shipped to the fleet"
                 : "UNEXPECTED — see output above");
  return ok ? 0 : 1;
}
