// Demo §3.3 / Fig 5: the profiling wrapper end to end.
//
// A user program runs with the profiling wrapper preloaded; at termination
// the wrapper's statistics become a self-describing XML document that is
// shipped to the central collector server; the server extracts which
// functions were wrapped and what was collected, stores the document, and
// renders the Fig 5 report (call frequencies, execution-time percentages,
// error distribution classified by errno).
//
// Build & run:  ./build/examples/profiling_demo
#include <cstdio>

#include "core/toolkit.hpp"
#include "profile/collector.hpp"
#include "profile/report.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

linker::Executable text_tool() {
  linker::Executable exe;
  exe.name = "texttool";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"fopen", "fgets", "fclose", "strlen", "strchr", "atoi", "toupper", "strcpy"};
  exe.entry = [](linker::Process& p) {
    // Seed the simulated filesystem with an input file.
    p.state().fs.put("/data/lines.txt", "alpha 1\nbeta 22\ngamma 333\n");
    const auto file = p.call("fopen", {SimValue::ptr(p.rodata_cstring("/data/lines.txt")),
                                       SimValue::ptr(p.rodata_cstring("r"))});
    const mem::Addr line = p.scratch(128, mem::Perm::kReadWrite, "line");
    int total = 0;
    while (p.call("fgets", {SimValue::ptr(line), SimValue::integer(128), file}).as_ptr() != 0) {
      p.call("strlen", {SimValue::ptr(line)});
      const auto digits = p.call("strchr", {SimValue::ptr(line), SimValue::integer(' ')});
      if (digits.as_ptr() != 0) {
        total += static_cast<int>(p.call("atoi", {SimValue::ptr(digits.as_ptr() + 1)}).as_int());
      }
      p.call("toupper", {SimValue::integer('x')});
    }
    p.call("fclose", {file});
    // A couple of failing calls so the errno histogram is non-trivial.
    p.call("fopen", {SimValue::ptr(p.rodata_cstring("/missing-1")),
                     SimValue::ptr(p.rodata_cstring("r"))});
    p.call("fopen", {SimValue::ptr(p.rodata_cstring("/missing-2")),
                     SimValue::ptr(p.rodata_cstring("r"))});
    return total;
  };
  return exe;
}

}  // namespace

int main() {
  core::Toolkit toolkit;

  // Profile BOTH libraries the app uses: two wrappers, stacked preloads.
  auto wrap_c = toolkit.profiling_wrapper("libsimc.so.1", /*include_trace=*/true).value();
  auto wrap_io = toolkit.profiling_wrapper("libsimio.so.1", /*include_trace=*/true).value();

  auto process = toolkit.spawn(text_tool(), {wrap_c, wrap_io});
  const auto outcome = process->run(text_tool().entry);
  std::printf("texttool run: %s\n\n", outcome.to_string().c_str());

  // "Upon termination, the wrapper generates a XML-style log file ..."
  const auto report_c = profile::build_report("texttool", wrap_c->name(), *wrap_c->stats());
  const auto report_io = profile::build_report("texttool", wrap_io->name(), *wrap_io->stats());
  const std::string doc_c = xml::serialize(profile::to_xml(report_c));
  const std::string doc_io = xml::serialize(profile::to_xml(report_io));
  std::printf("XML document shipped to the collector (libsimio wrapper):\n%s\n", doc_io.c_str());

  // "... sent to a central server ... stored for later processing."
  profile::CollectorServer server;
  server.ingest(doc_c);
  server.ingest(doc_io);
  std::printf("%s\n", server.render_summary().c_str());

  // The Fig 5 view, table and chart ("automatically generate graphics").
  std::printf("%s\n", profile::render(report_io).c_str());
  std::printf("%s\n", profile::render_chart(report_c, profile::ChartMetric::kCalls).c_str());

  // The call trace collected by the log-call micro-generator.
  std::printf("first trace records (libsimio wrapper):\n");
  std::size_t shown = 0;
  for (const gen::TraceRecord& rec : wrap_io->stats()->trace()) {
    std::printf("  %s(", rec.symbol.c_str());
    for (std::size_t i = 0; i < rec.args.size(); ++i) {
      std::printf("%s%s", i != 0 ? ", " : "", rec.args[i].c_str());
    }
    std::printf(") -> %s\n", rec.outcome.c_str());
    if (++shown == 6) break;
  }
  return 0;
}
