// The testing-wrapper family (companion paper [5] of the generator
// architecture): instead of containing faults, INJECT them — so the error
// handling of an existing application can be exercised without source
// access.
//
// The demo app has a fallback path for allocation failure and a retry path
// for missing files. Under normal runs neither executes; under the testing
// wrapper both are driven deterministically.
//
// Build & run:  ./build/examples/error_injection_demo
#include <cstdio>

#include "core/toolkit.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

struct RunStats {
  int alloc_fallbacks = 0;
  int open_retries = 0;
  int completed = 0;
};

linker::Executable resilient_app(RunStats& stats) {
  linker::Executable exe;
  exe.name = "resilient";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"malloc", "free", "fopen", "fclose", "strcpy"};
  exe.entry = [&stats](linker::Process& p) {
    p.state().fs.put("/cfg", "option=1\n");
    for (int i = 0; i < 50; ++i) {
      // Allocation with a static-buffer fallback.
      const mem::Addr buf = p.call("malloc", {SimValue::integer(64)}).as_ptr();
      mem::Addr dest = buf;
      if (buf == 0) {
        ++stats.alloc_fallbacks;
        dest = p.scratch(64, mem::Perm::kReadWrite, "static_fallback");
      }
      p.call("strcpy", {SimValue::ptr(dest), SimValue::ptr(p.rodata_cstring("payload"))});
      if (buf != 0) p.call("free", {SimValue::ptr(buf)});

      // File open with one retry.
      auto file = p.call("fopen", {SimValue::ptr(p.rodata_cstring("/cfg")),
                                   SimValue::ptr(p.rodata_cstring("r"))});
      if (file.as_ptr() == 0) {
        ++stats.open_retries;
        file = p.call("fopen", {SimValue::ptr(p.rodata_cstring("/cfg")),
                                SimValue::ptr(p.rodata_cstring("r"))});
      }
      if (file.as_ptr() != 0) p.call("fclose", {file});
      ++stats.completed;
    }
    return 0;
  };
  return exe;
}

}  // namespace

int main() {
  core::Toolkit toolkit;

  // Normal run: the error paths never execute — 0% coverage of them.
  RunStats normal;
  toolkit.spawn(resilient_app(normal))->run(resilient_app(normal).entry);
  std::printf("normal run:            %d iterations, %d alloc fallbacks, %d open retries\n",
              normal.completed, normal.alloc_fallbacks, normal.open_retries);

  // Testing run: 30%% of fallible libsimc calls and 30%% of fallible
  // libsimio calls fail with their documented errnos.
  RunStats injected;
  const auto exe = resilient_app(injected);
  auto wrap_c = wrappers::make_testing_wrapper(*toolkit.library("libsimc.so.1"), 0.3, 7).value();
  auto wrap_io =
      wrappers::make_testing_wrapper(*toolkit.library("libsimio.so.1"), 0.3, 8).value();
  const auto outcome = toolkit.spawn(exe, {wrap_c, wrap_io})->run(exe.entry);
  std::printf("error-injected run:    %d iterations, %d alloc fallbacks, %d open retries\n",
              injected.completed, injected.alloc_fallbacks, injected.open_retries);
  std::printf("outcome: %s — the app's error handling held up\n",
              outcome.to_string().c_str());
  std::printf("injected failures: %llu (libsimc) + %llu (libsimio)\n",
              static_cast<unsigned long long>(wrap_c->stats()->total_contained()),
              static_cast<unsigned long long>(wrap_io->stats()->total_contained()));

  const bool exercised = injected.alloc_fallbacks > 0 && injected.open_retries > 0 &&
                         normal.alloc_fallbacks == 0 && normal.open_retries == 0;
  std::printf("verdict: error paths %s\n",
              exercised ? "exercised only under injection (as intended)" : "UNEXPECTED");
  return exercised && outcome.exit_code == 0 ? 0 : 1;
}
