// Experiment F5 — Fig 5 / demo §3.3: the profiling wrapper.
//
// Regenerates: the Fig 5 report (call frequencies, execution-time
// percentages, error distribution classified by errno) for a realistic
// text-processing workload, the XML document it ships, and the collector's
// cross-process aggregate — then benchmarks the per-call profiling cost and
// the report/collection pipeline.
//
// Expected shape: profiling adds a small constant per call (the paper's
// "low overhead during normal operations"), report generation is linear in
// the number of wrapped functions, and collection is linear in documents.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"
#include "profile/collector.hpp"
#include "profile/report.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

// The demo workload: read lines, measure, convert, classify, log errors.
void run_workload(linker::Process& p, int rounds) {
  p.state().fs.put("/w/input.txt", "alpha 10\nbeta 20\ngamma 30\n");
  for (int r = 0; r < rounds; ++r) {
    const auto file = p.call("fopen", {SimValue::ptr(p.rodata_cstring("/w/input.txt")),
                                       SimValue::ptr(p.rodata_cstring("r"))});
    const mem::Addr line = p.scratch(128);
    while (p.call("fgets", {SimValue::ptr(line), SimValue::integer(128), file}).as_ptr() != 0) {
      p.call("strlen", {SimValue::ptr(line)});
      p.call("atoi", {SimValue::ptr(line)});
      p.call("toupper", {SimValue::integer('a')});
    }
    p.call("fclose", {file});
    p.machine().set_err(0);
    p.call("fopen", {SimValue::ptr(p.rodata_cstring("/missing")),
                     SimValue::ptr(p.rodata_cstring("r"))});  // ENOENT
  }
}

linker::Executable workload_exe() {
  linker::Executable exe;
  exe.name = "texttool";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"fopen", "fgets", "fclose", "strlen", "atoi", "toupper"};
  return exe;
}

void print_report() {
  std::printf("==== Fig 5: profiling wrapper report ====\n\n");
  auto wrap_c = toolkit().profiling_wrapper("libsimc.so.1").value();
  auto wrap_io = toolkit().profiling_wrapper("libsimio.so.1").value();
  auto proc = toolkit().spawn(workload_exe(), {wrap_c, wrap_io});
  run_workload(*proc, 10);

  const auto report_io =
      profile::build_report("texttool", wrap_io->name(), *wrap_io->stats());
  const auto report_c = profile::build_report("texttool", wrap_c->name(), *wrap_c->stats());
  std::printf("%s\n%s\n", profile::render(report_io).c_str(), profile::render(report_c).c_str());

  profile::CollectorServer server;
  server.ingest(xml::serialize(profile::to_xml(report_io)));
  server.ingest(xml::serialize(profile::to_xml(report_c)));
  std::printf("%s\n", server.render_summary().c_str());
}

void BM_WorkloadUnwrapped(benchmark::State& state) {
  for (auto _ : state) {
    auto proc = toolkit().spawn(workload_exe());
    run_workload(*proc, 1);
    benchmark::DoNotOptimize(proc->calls_dispatched());
  }
}

void BM_WorkloadProfiled(benchmark::State& state) {
  for (auto _ : state) {
    auto proc = toolkit().spawn(workload_exe(),
                                {toolkit().profiling_wrapper("libsimc.so.1").value(),
                                 toolkit().profiling_wrapper("libsimio.so.1").value()});
    run_workload(*proc, 1);
    benchmark::DoNotOptimize(proc->calls_dispatched());
  }
}

void BM_BuildReport(benchmark::State& state) {
  auto wrapper = toolkit().profiling_wrapper("libsimc.so.1").value();
  auto proc = toolkit().spawn(workload_exe(), {wrapper});
  run_workload(*proc, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profile::build_report("texttool", wrapper->name(), *wrapper->stats()).total_calls());
  }
}

void BM_XmlShipAndIngest(benchmark::State& state) {
  auto wrapper = toolkit().profiling_wrapper("libsimc.so.1").value();
  auto proc = toolkit().spawn(workload_exe(), {wrapper});
  run_workload(*proc, 5);
  const auto report = profile::build_report("texttool", wrapper->name(), *wrapper->stats());
  for (auto _ : state) {
    profile::CollectorServer server;
    benchmark::DoNotOptimize(server.ingest(xml::serialize(profile::to_xml(report))).ok());
  }
}

}  // namespace

BENCHMARK(BM_WorkloadUnwrapped)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WorkloadProfiled)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildReport)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_XmlShipAndIngest)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
