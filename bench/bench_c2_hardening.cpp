// Experiment C2 — the paper's central claim: the generated wrappers "fix a
// large percentage of such problems".
//
// Regenerates: a before/after table per library — the Ballista-style
// campaign's robustness-failure counts against the bare library vs the same
// probes replayed with the robustness wrapper preloaded — and the aggregate
// hardening percentage.
//
// Expected shape: hundreds of failures before; ZERO after, for every stock
// library (the wrapper enforces exactly the API the campaign derived).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;

namespace {

core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

injector::InjectorConfig config() {
  injector::InjectorConfig cfg;
  cfg.seed = 4242;
  cfg.variants = 1;
  return cfg;
}

struct HardeningRow {
  std::string function;
  std::uint64_t probes = 0;
  std::uint64_t failures_before = 0;
  std::uint64_t failures_after = 0;
};

// Replays every campaign probe with the robustness wrapper preloaded and
// counts surviving failures.
std::vector<HardeningRow> replay_with_wrapper(const simlib::SharedLibrary& lib,
                                              const injector::CampaignResult& campaign) {
  std::vector<HardeningRow> rows;
  for (const injector::RobustSpec& spec : campaign.specs) {
    if (spec.skipped_noreturn) continue;
    HardeningRow row;
    row.function = spec.function;
    row.failures_before = spec.total_failures;

    const simlib::Symbol* symbol = lib.find(spec.function);
    const auto page = parser::parse_manpage(symbol->manpage).value();
    for (std::size_t i = 0; i < page.proto.params.size(); ++i) {
      for (const lattice::TestTypeId id :
           lattice::test_types_for(page.proto.params[i].type.classify())) {
        for (std::size_t case_index = 0;; ++case_index) {
          auto proc = testbed::make_process();
          // Same testbed environment as the campaign (stdin for gets).
          proc->state().stdin_content = "a line of console input for the probe\n";
          proc->preload(wrappers::make_robustness_wrapper(lib, campaign).value());
          Rng rng(config().seed + case_index);
          lattice::ValueFactory factory(*proc, rng);
          const auto cases = factory.cases_of(id, config().variants);
          if (case_index >= cases.size()) break;
          std::vector<simlib::SimValue> args;
          for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
            args.push_back(j == i ? cases[case_index].value
                                  : factory.safe_value(page, static_cast<int>(j) + 1));
          }
          ++row.probes;
          if (proc->supervised_call(spec.function, std::move(args)).robustness_failure()) {
            ++row.failures_after;
          }
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_report() {
  std::printf("==== C2: robustness failures before vs after wrapping ====\n\n");
  std::uint64_t total_before = 0;
  std::uint64_t total_after = 0;
  for (const std::string& soname : toolkit().list_libraries()) {
    const simlib::SharedLibrary& lib = *toolkit().library(soname);
    const auto campaign = toolkit().derive_robust_api(soname, config()).value();
    const auto rows = replay_with_wrapper(lib, campaign);

    std::printf("%s\n", soname.c_str());
    std::printf("function         probes  fail-before  fail-after\n");
    std::printf("--------------------------------------------------\n");
    for (const HardeningRow& row : rows) {
      if (row.failures_before == 0 && row.failures_after == 0) continue;
      std::printf("%-16s %6llu  %11llu  %10llu\n", row.function.c_str(),
                  static_cast<unsigned long long>(row.probes),
                  static_cast<unsigned long long>(row.failures_before),
                  static_cast<unsigned long long>(row.failures_after));
      total_before += row.failures_before;
      total_after += row.failures_after;
    }
    std::printf("\n");
  }
  const double fixed = total_before == 0
                           ? 100.0
                           : 100.0 * static_cast<double>(total_before - total_after) /
                                 static_cast<double>(total_before);
  std::printf("aggregate: %llu failures before, %llu after — %.1f%% of robustness "
              "failures eliminated by the generated wrappers\n\n",
              static_cast<unsigned long long>(total_before),
              static_cast<unsigned long long>(total_after), fixed);
}

void BM_HardenedReplayLibsimm(benchmark::State& state) {
  const simlib::SharedLibrary& lib = *toolkit().library("libsimm.so.1");
  const auto campaign = toolkit().derive_robust_api("libsimm.so.1", config()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_with_wrapper(lib, campaign).size());
  }
}

void BM_WrapperGenerationFromCampaign(benchmark::State& state) {
  const simlib::SharedLibrary& lib = *toolkit().library("libsimc.so.1");
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrappers::make_robustness_wrapper(lib, campaign).value());
  }
}

}  // namespace

BENCHMARK(BM_HardenedReplayLibsimm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WrapperGenerationFromCampaign)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
