// Experiment D6 — demand-driven surface debloating (docs/debloat.md).
//
// Regenerates: the debloating numbers the surface subsystem claims —
//   * unmapped surface: what share of the catalog's exported symbols a demo
//     executable's run leaves unmapped under the demand-loading barrier
//     (acceptance floor: >= 30%);
//   * resident pages: text pages actually faulted in vs what eager binding
//     maps, i.e. the memory-footprint reduction;
//   * scoped campaigns: wall time of a derive scoped to the executable's
//     reachable set vs the whole-library campaign — the speedup the
//     surface-scope spec-cache entries buy the derivation service.
//
// Expected shape: >90% of symbols unmapped for the small demo executables,
// resident pages tracking touched symbols (one page each), and the scoped
// campaign several times faster than the full derive (it probes ~6 of ~30
// functions).
//
// Every row carries the `demand_loading` marker counter; run_benches.sh
// rejects a BENCH_d6.json without it. The bench also self-checks the
// acceptance floor at startup and refuses to emit numbers below it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "debloat/reachability.hpp"
#include "debloat/surface.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

// The netd closure restricted to one library — what `healers debloat
// --cache-file` installs as the library's surface scope.
std::vector<std::string> scoped_functions(const std::string& soname) {
  const linker::Executable exe = attacks::heap_victim_executable();
  const auto report = debloat::compute_reachability(exe, toolkit().catalog());
  const simlib::SharedLibrary* lib = toolkit().library(soname);
  std::vector<std::string> scoped;
  for (const std::string& symbol : report.reachable) {
    if (lib != nullptr && lib->defines(symbol)) scoped.push_back(symbol);
  }
  return scoped;
}

// Startup self-check: the demo run must clear the >= 30% unmapped floor the
// subsystem is built around; numbers from a tree where demand loading maps
// everything eagerly would be meaningless.
bool demand_loading_self_check() {
  const linker::Executable exe = attacks::heap_victim_executable();
  const auto report = debloat::compute_reachability(exe, toolkit().catalog());
  auto proc = debloat::spawn_debloated(exe, toolkit().catalog(), report);
  (void)proc->run(exe.entry);
  const auto profile = debloat::capture_surface_profile(*proc, report, "bench");
  return proc->demand_loading() && profile.unmapped_ratio() >= 0.30 &&
         profile.resident_pages < profile.total_pages;
}

bool g_demand_ok = false;

// One debloated run end to end: closure, spawn, run, profile capture. The
// counters are the committed numbers.
void BM_DebloatedRun(benchmark::State& state, linker::Executable (*make_exe)()) {
  const linker::Executable exe = make_exe();
  debloat::SurfaceProfile profile;
  for (auto _ : state) {
    const auto report = debloat::compute_reachability(exe, toolkit().catalog());
    auto proc = debloat::spawn_debloated(exe, toolkit().catalog(), report);
    (void)proc->run(exe.entry);
    profile = debloat::capture_surface_profile(*proc, report, "bench");
    benchmark::DoNotOptimize(profile);
  }
  state.counters["unmapped_pct"] = 100.0 * profile.unmapped_ratio();
  state.counters["resident_pages"] = static_cast<double>(profile.resident_pages);
  state.counters["total_pages"] = static_cast<double>(profile.total_pages);
  state.counters["trapped"] = static_cast<double>(profile.trapped);
  state.counters["demand_loading"] = g_demand_ok ? 1 : 0;
}

// The eager baseline the run above is compared against: the plain spawn
// path, every GOT slot bound at load.
void BM_EagerRun(benchmark::State& state) {
  const linker::Executable exe = attacks::heap_victim_executable();
  for (auto _ : state) {
    auto proc = linker::spawn(exe, toolkit().catalog());
    (void)proc->run(exe.entry);
    benchmark::DoNotOptimize(proc);
  }
  state.counters["demand_loading"] = g_demand_ok ? 1 : 0;
}

// Campaign derivation scoped to the reachable set vs the whole library. A
// fresh toolkit per iteration keeps the memo table out of the measurement.
void BM_Campaign(benchmark::State& state, const std::string& soname, bool scoped) {
  const std::vector<std::string> scope = scoped_functions(soname);
  std::uint64_t probes = 0;
  std::size_t functions = 0;
  for (auto _ : state) {
    core::Toolkit kit;
    injector::InjectorConfig config;
    config.seed = 2003;
    if (scoped) config.only_functions = scope;
    const auto campaign = kit.derive_robust_api(soname, config);
    if (!campaign.ok()) state.SkipWithError(campaign.error().message.c_str());
    probes = campaign.value().total_probes();
    functions = campaign.value().specs.size();
  }
  state.counters["probes"] = static_cast<double>(probes);
  state.counters["functions"] = static_cast<double>(functions);
  state.counters["demand_loading"] = g_demand_ok ? 1 : 0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_DebloatedRun, netd, attacks::heap_victim_executable)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DebloatedRun, statsd, attacks::drift_victim_executable)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EagerRun)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Campaign, libsimc_scoped, "libsimc.so.1", true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, libsimc_full, "libsimc.so.1", false)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  g_demand_ok = demand_loading_self_check();
  if (!g_demand_ok) {
    std::fprintf(stderr,
                 "bench_d6: demand-loading self-check FAILED — the demo run did not "
                 "leave >= 30%% of the surface unmapped; refusing to emit numbers.\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
