// Experiment D4 — demo §3.4: buffer-overflow attacks vs the security
// wrapper.
//
// Regenerates: the 2x2 demo matrix (heap/stack attack x unprotected/
// protected) with detection verdicts, then benchmarks attack end-to-end
// latency and, more importantly, the security wrapper's steady-state cost
// on benign allocation-heavy workloads (canary plant/verify per call).
//
// Expected shape: 100% hijack success unprotected, 100% detection with the
// wrapper, and a modest constant per-allocation overhead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

void print_report() {
  std::printf("==== Demo 3.4: overflow attacks vs the security wrapper ====\n\n");
  struct Row {
    const char* attack;
    bool protected_run;
    attacks::AttackResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"heap unlink", false, attacks::run_heap_smash_attack(toolkit().catalog(), {})});
  rows.push_back({"heap unlink", true,
                  attacks::run_heap_smash_attack(
                      toolkit().catalog(), {toolkit().security_wrapper("libsimc.so.1").value()})});
  rows.push_back(
      {"stack smash", false, attacks::run_stack_smash_attack(toolkit().catalog(), {})});
  rows.push_back({"stack smash", true,
                  attacks::run_stack_smash_attack(
                      toolkit().catalog(), {toolkit().security_wrapper("libsimc.so.1").value()})});

  std::printf("attack        wrapper   outcome\n");
  std::printf("--------------------------------------------------------------\n");
  int hijacks = 0;
  int blocked = 0;
  for (const Row& row : rows) {
    std::printf("%-12s  %-8s  %s\n", row.attack, row.protected_run ? "security" : "none",
                row.result.outcome.to_string().c_str());
    if (row.result.hijack_succeeded) ++hijacks;
    if (row.result.blocked_by_wrapper) ++blocked;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("unprotected hijack rate: %d/2   wrapper detection rate: %d/2\n\n", hijacks,
              blocked);

  // Defence-comparison ablation: the paper's wrapper-side canaries vs the
  // later allocator-side mitigation (post-2004 safe unlinking). Both stop
  // the unlink exploit, but at different points: the wrapper aborts at the
  // overflowing memcpy (before any corruption is consumed); safe unlinking
  // only aborts inside free(), after the neighbouring chunk was corrupted.
  std::printf("defence comparison (heap unlink attack):\n");
  const auto wrapper_run = attacks::run_heap_smash_attack(
      toolkit().catalog(), {toolkit().security_wrapper("libsimc.so.1").value()});
  const auto hardened_run =
      attacks::run_heap_smash_attack(toolkit().catalog(), {}, /*hardened_allocator=*/true);
  std::printf("  security wrapper      : %s\n", wrapper_run.outcome.to_string().c_str());
  std::printf("  safe-unlink allocator : %s\n\n", hardened_run.outcome.to_string().c_str());
}

void BM_HeapAttackUnprotected(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacks::run_heap_smash_attack(toolkit().catalog(), {}).hijack_succeeded);
  }
}

void BM_HeapAttackProtected(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacks::run_heap_smash_attack(toolkit().catalog(),
                                       {toolkit().security_wrapper("libsimc.so.1").value()})
            .blocked_by_wrapper);
  }
}

// Benign allocation-heavy workload, with and without the security wrapper:
// the steady-state cost of canaries.
void run_alloc_workload(linker::Process& p) {
  std::vector<mem::Addr> live;
  for (int i = 0; i < 100; ++i) {
    const mem::Addr q = p.call("malloc", {SimValue::integer(48)}).as_ptr();
    p.call("strcpy", {SimValue::ptr(q), SimValue::ptr(p.rodata_cstring("payload-content"))});
    live.push_back(q);
    if (live.size() > 10) {
      p.call("free", {SimValue::ptr(live.front())});
      live.erase(live.begin());
    }
  }
  for (const mem::Addr q : live) p.call("free", {SimValue::ptr(q)});
}

linker::Executable alloc_exe() {
  linker::Executable exe;
  exe.name = "allocator";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"malloc", "free", "strcpy"};
  return exe;
}

void BM_AllocWorkloadUnwrapped(benchmark::State& state) {
  for (auto _ : state) {
    auto proc = toolkit().spawn(alloc_exe());
    run_alloc_workload(*proc);
    benchmark::DoNotOptimize(proc->calls_dispatched());
  }
}

void BM_AllocWorkloadGuarded(benchmark::State& state) {
  for (auto _ : state) {
    auto proc =
        toolkit().spawn(alloc_exe(), {toolkit().security_wrapper("libsimc.so.1").value()});
    run_alloc_workload(*proc);
    benchmark::DoNotOptimize(proc->calls_dispatched());
  }
}

}  // namespace

BENCHMARK(BM_HeapAttackUnprotected)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HeapAttackProtected)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AllocWorkloadUnwrapped)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AllocWorkloadGuarded)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
