// Experiment F7 — virtual-time fleet simulation at scale (ISSUE 7).
//
// Regenerates: a million simulated hosts on the discrete-event engine
// (src/sim) driving the REAL serve path — FleetCollector ingest and
// DeriveServer admission control — end to end. Rows report simulated
// hosts/sec and ingest docs/sec (wall clock), plus the deterministic
// drop/shed accounting at overload.
//
// Expected shape: >= 100k simulated hosts/sec end-to-end on laptop-class
// hardware; jobs scaling on the parallel advance phase; at overload the
// collector drops and the server sheds by COUNT, never silently — the
// accounting identities hold at every scale (self-checked below; the bench
// refuses to emit numbers from a run that lost a document).
//
// Every row carries the `virtual_time` marker counter; run_benches.sh
// rejects a BENCH_f7.json without it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/toolkit.hpp"
#include "sim/fleet_sim.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

sim::SimConfig fleet_config(std::uint32_t hosts, unsigned jobs) {
  sim::SimConfig config;
  config.hosts = hosts;
  config.virtual_seconds = 60;
  config.seed = 2003;
  config.traffic = sim::TrafficModel::kMixed;
  config.shards = 16;
  config.jobs = jobs;
  return config;
}

// The accounting identities the whole experiment rests on; abort rather
// than publish numbers from a run that lost a document or a request.
void check_accounting(const sim::FleetSim& simulation, const sim::SimStats& stats) {
  const auto& collector = simulation.collector();
  const auto server_stats = simulation.server().stats();
  const bool collector_ok =
      collector.submitted() == collector.aggregated() + collector.malformed() +
                                   collector.dropped() + collector.pending() &&
      collector.malformed() == 0;
  const bool server_ok =
      server_stats.submitted ==
          server_stats.answered + server_stats.shed + server_stats.pending &&
      stats.responses_ok + stats.responses_error + stats.responses_shed ==
          stats.derive_requests;
  if (!collector_ok || !server_ok) {
    std::fprintf(stderr, "FATAL: accounting identity violated; refusing to emit numbers\n");
    std::exit(1);
  }
}

void print_headline() {
  std::printf("==== F7: virtual-time fleet simulation ====\n\n");
  sim::FleetSim simulation(toolkit(), fleet_config(100'000, 0));
  const sim::SimStats stats = simulation.run();
  check_accounting(simulation, stats);
  std::printf("%s\n", simulation.render_global_summary().c_str());
}

// End-to-end simulation: event engine -> traffic models -> wire encode ->
// collector ingest + derive admission -> flush/drain -> response retire.
void BM_SimFleet(benchmark::State& state) {
  const auto hosts = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t emissions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sheds = 0;
  for (auto _ : state) {
    sim::FleetSim simulation(toolkit(), fleet_config(hosts, 0));
    const sim::SimStats stats = simulation.run();
    check_accounting(simulation, stats);
    emissions += stats.emissions;
    bytes += stats.payload_bytes;
    sheds += stats.responses_shed;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(hosts));
  state.counters["virtual_time"] = 1;
  state.counters["hosts_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * hosts, benchmark::Counter::kIsRate);
  state.counters["ingest_docs_per_sec"] =
      benchmark::Counter(static_cast<double>(emissions), benchmark::Counter::kIsRate);
  state.counters["payload_bytes_per_sec"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
  state.counters["sheds"] = static_cast<double>(sheds / std::max<std::uint64_t>(1, state.iterations()));
}

// Jobs scaling of the parallel advance phase (delivery stays serial — that
// is what keeps the run byte-reproducible).
void BM_SimJobsScaling(benchmark::State& state) {
  const auto jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sim::FleetSim simulation(toolkit(), fleet_config(250'000, jobs));
    const sim::SimStats stats = simulation.run();
    check_accounting(simulation, stats);
    benchmark::DoNotOptimize(stats.events);
  }
  state.SetItemsProcessed(state.iterations() * 250'000);
  state.counters["virtual_time"] = 1;
  state.counters["hosts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 250'000,
                         benchmark::Counter::kIsRate);
}

// Overload: tiny collector queues + a tiny derive server under burst and
// crash-loop traffic. The interesting numbers are the counted drop and shed
// rates — the admission-control story at fleet scale.
void BM_SimOverload(benchmark::State& state) {
  std::uint64_t dropped = 0;
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    sim::SimConfig config = fleet_config(100'000, 0);
    config.traffic = sim::TrafficModel::kCrashLoop;
    config.collector.shards = 2;
    config.collector.queue_capacity = 2048;
    config.server.queue_capacity = 64;
    sim::FleetSim simulation(toolkit(), config);
    const sim::SimStats stats = simulation.run();
    check_accounting(simulation, stats);
    dropped += simulation.collector().dropped();
    submitted += simulation.collector().submitted();
    shed += stats.responses_shed;
    requests += stats.derive_requests;
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
  state.counters["virtual_time"] = 1;
  state.counters["drop_rate"] =
      static_cast<double>(dropped) / static_cast<double>(std::max<std::uint64_t>(1, submitted));
  state.counters["shed_rate"] =
      static_cast<double>(shed) / static_cast<double>(std::max<std::uint64_t>(1, requests));
  state.counters["hosts_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 100'000, benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SimFleet)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(250'000)
    ->Arg(1'000'000);
BENCHMARK(BM_SimJobsScaling)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(0);  // 0 = all cores
BENCHMARK(BM_SimOverload)->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  print_headline();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
