// Experiment D5 — repair-mode wrappers (ISSUE 9): the §3.4 overflow attacks
// under all three response postures, plus the repair wrapper's steady-state
// cost on benign workloads.
//
// Regenerates: the EXPERIMENTS.md detect-vs-repair table (2 attacks x
// unprotected/security/repair with hijack/terminated/survived verdicts and
// applied-repair counts), then benchmarks benign-path overhead: the repair
// wrapper's extent bookkeeping on allocation-heavy and string-heavy loops
// against the bare and security-wrapped baselines.
//
// Expected shape: 100% hijack unprotected, 100% termination under the
// security wrapper, 100% survival with correct output under the repair
// wrapper (exactly one applied repair per attack); benign-path overhead a
// small constant per call, below the canary wrapper's plant/verify cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "incident/recorder.hpp"
#include "linker/testbed.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

std::shared_ptr<gen::ComposedWrapper> repair_wrapper() {
  static const std::shared_ptr<gen::ComposedWrapper> wrapper = [] {
    const auto campaign = toolkit().derive_robust_api("libsimc.so.1").value();
    return toolkit().repair_wrapper("libsimc.so.1", campaign).value();
  }();
  return wrapper;
}

void print_report() {
  std::printf("==== D5: overflow attacks under detect-only vs repair mode ====\n\n");
  struct Row {
    const char* attack;
    const char* posture;
    attacks::AttackResult result;
    std::uint64_t repairs;
  };
  const auto security = toolkit().security_wrapper("libsimc.so.1").value();
  std::vector<Row> rows;
  for (const bool heap : {true, false}) {
    const char* attack = heap ? "heap unlink" : "stack smash";
    const auto run = [&](std::vector<linker::InterpositionPtr> preloads,
                         simlib::CallObserver* observer) {
      return heap ? attacks::run_heap_smash_attack(toolkit().catalog(), std::move(preloads),
                                                   false, observer)
                  : attacks::run_stack_smash_attack(toolkit().catalog(), std::move(preloads),
                                                    observer);
    };
    rows.push_back({attack, "none", run({}, nullptr), 0});
    rows.push_back({attack, "security", run({security}, nullptr), 0});
    incident::FlightRecorder recorder;
    rows.push_back({attack, "repair", run({repair_wrapper()}, &recorder),
                    recorder.repairs_applied()});
  }

  std::printf("attack        posture   repairs  verdict\n");
  std::printf("-----------------------------------------------------------------\n");
  for (const Row& row : rows) {
    const char* verdict = row.result.hijack_succeeded    ? "hijacked"
                          : row.result.blocked_by_wrapper ? "terminated (detected)"
                          : row.result.survived           ? "survived, correct output"
                                                          : "other";
    std::printf("%-12s  %-8s  %7llu  %s\n", row.attack, row.posture,
                static_cast<unsigned long long>(row.repairs), verdict);
  }
  std::printf("-----------------------------------------------------------------\n\n");
}

// Benign steady-state cost: malloc/free churn (the repair wrapper's extent
// table insert/erase per call) and bounded string traffic (rule lookup plus
// an in-bounds write-size measurement that concludes "no repair needed").
void BM_BenignWorkload(benchmark::State& state, int posture) {
  auto process = std::make_unique<linker::Process>("bench-benign");
  for (const std::string& soname : toolkit().catalog().sonames()) {
    process->load_library(toolkit().catalog().find(soname));
  }
  if (posture == 1) process->preload(toolkit().security_wrapper("libsimc.so.1").value());
  if (posture == 2) process->preload(repair_wrapper());
  const mem::Addr src = process->alloc_cstring("forty-two bytes of benign string traffic");
  for (auto _ : state) {
    process->machine().reset_steps();  // keep the hang oracle out of steady-state timing
    const mem::Addr p = process->call("malloc", {SimValue::integer(64)}).as_ptr();
    process->call("strcpy", {SimValue::ptr(p), SimValue::ptr(src)});
    benchmark::DoNotOptimize(process->call("strlen", {SimValue::ptr(p)}).as_int());
    process->call("free", {SimValue::ptr(p)});
  }
  state.counters["repair_mode"] = posture == 2 ? 1 : 0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_BenignWorkload, unwrapped, 0)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_BenignWorkload, security, 1)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_BenignWorkload, repair, 2)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
