// Experiment F2 — Fig 2: the fault-injection pipeline deriving the robust
// API of a shared library.
//
// Regenerates: the Fig 2 report for every stock library (probes run,
// robustness failures found, weakest safe argument types per function), plus
// google-benchmark timings of the pipeline's stages (campaign per library,
// per-function probing, spec XML serialization).
//
// Expected shape (paper §2.2 and Ballista [6]): the string/memory family is
// riddled with robustness failures (most functions fail on NULL/wild/
// unterminated arguments); the value-in/value-out math library has none.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "gen/repair_policy.hpp"
#include "incident/recorder.hpp"
#include "linker/testbed.hpp"
#include "memmodel/addr_space.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

// Resident-set size from /proc/self/statm (Linux); 0 when unavailable.
std::uint64_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  return fields == 2 ? resident * 4096ULL : 0;
}

// Verifies COW state storage is actually compiled in: a store after
// snapshot() must privatize exactly the touched page, and restore() must
// drop it again. run_benches.sh refuses to publish numbers from a tree where
// this fails (main() exits nonzero), and every fig2 state row carries the
// cow_states marker counter the script greps for.
bool cow_self_check() {
  mem::AddressSpace space;
  const mem::Region& region =
      space.map(4 * mem::kCowPageSize, mem::Perm::kReadWrite, mem::RegionKind::kScratch, "probe");
  const auto snap = space.snapshot();
  space.store8(region.base, 7);
  if (space.find(region.base)->private_pages() != 1) return false;
  if (space.cow_stats().pages_privatized == 0) return false;
  space.restore(snap);
  return space.load8(region.base) == 0 && space.cow_stats().pages_dropped >= 1;
}

bool g_cow_ok = false;

mem::MachineConfig testbed_machine_config() {
  const injector::InjectorConfig defaults;
  mem::MachineConfig machine_config;
  machine_config.heap_size = defaults.testbed_heap;
  machine_config.stack_size = defaults.testbed_stack;
  machine_config.step_budget = defaults.probe_step_budget;
  return machine_config;
}

injector::InjectorConfig config() {
  injector::InjectorConfig cfg;
  cfg.seed = 2003;
  cfg.variants = 2;
  return cfg;
}

void print_report() {
  std::printf("==== Fig 2: robust-API derivation (fault-injection campaigns) ====\n\n");
  for (const std::string& soname : toolkit().list_libraries()) {
    const auto campaign = toolkit().derive_robust_api(soname, config()).value();
    std::printf("%s\n", campaign.to_table().c_str());
    const double failure_rate =
        campaign.total_probes() == 0
            ? 0.0
            : 100.0 * static_cast<double>(campaign.total_failures()) /
                  static_cast<double>(campaign.total_probes());
    std::printf("failure rate: %.1f%% of probes; %zu/%zu functions non-robust\n\n",
                failure_rate, campaign.functions_with_failures(), campaign.specs.size());
  }
  const std::uint64_t executed = toolkit().probes_executed();
  const std::uint64_t implied = toolkit().probes_implied();
  std::printf("subsumption pruning across the report's campaigns: %llu probes executed, "
              "%llu implied (%.1f%% skipped)\n\n",
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(implied),
              executed + implied == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(implied) / static_cast<double>(executed + implied));
}

// Campaign throughput, measured on the FaultInjector itself: the toolkit's
// derive cache would otherwise serve every iteration after the first from
// memory. One configuration per engine mode:
//   fresh/jobs:1 — the deep baseline (rebuild a full process per probe),
//   fork/jobs:1  — COW fork from one shared pristine state, per-probe reset
//                  drops only the pages the probe privatized,
//   fork/jobs:8  — the same, fanned out over 8 worker threads,
//   pruned rows  — the subsumption-pruned lattice walk on top of fork mode:
//                  implied verdicts are synthesized, not executed
//                  (DESIGN.md, "Subsumption pruning").
// All configurations produce byte-identical campaign XML (enforced by
// test_injector_parallel and test_subsume); only the throughput counters may
// differ. The engine counters expose the mechanism: fresh rows build one
// testbed per probe, fork rows build one per worker and fork the rest, and
// pruned rows split the probe count into executed vs implied — the speedup
// over the matching unpruned row tracks probe_reduction. The non-pruned
// rows pin prune off so their numbers stay comparable across revisions.
void BM_CampaignEngine(benchmark::State& state, const std::string& soname, int jobs,
                       bool snapshot_reset, bool prune) {
  injector::InjectorConfig cfg = config();
  cfg.jobs = jobs;
  cfg.snapshot_reset = snapshot_reset;
  cfg.prune = prune;
  const linker::LibraryCatalog& catalog = toolkit().catalog();
  const simlib::SharedLibrary* lib = toolkit().library(soname);
  injector::FaultInjector injector(catalog, cfg);
  std::uint64_t probes_before = injector.probes_executed();
  const injector::CampaignEngineStats engine_before = injector.engine_stats();
  for (auto _ : state) {
    const auto campaign = injector.run_campaign(*lib).value();
    benchmark::DoNotOptimize(campaign.total_failures());
  }
  const injector::CampaignEngineStats engine = injector.engine_stats();
  const double probes = static_cast<double>(injector.probes_executed() - probes_before);
  state.counters["probes/s"] = benchmark::Counter(probes, benchmark::Counter::kIsRate);
  state.counters["testbeds_built"] = benchmark::Counter(
      static_cast<double>(engine.testbeds_built - engine_before.testbeds_built),
      benchmark::Counter::kAvgIterations);
  state.counters["pages_dropped/probe"] =
      probes == 0 ? 0
                  : static_cast<double>(engine.pages_dropped - engine_before.pages_dropped) /
                        probes;
  if (prune) {
    // Executed/implied split per campaign, plus the marker counter
    // run_benches.sh greps for — the artifact's attestation that these rows
    // came from the subsumption-pruned walk. Note the injector's profile
    // store stays warm across iterations, so later campaigns prune a bit
    // more than the first (cross-campaign learning, averaged here).
    const double executed = probes;
    const double implied =
        static_cast<double>(engine.probes_implied - engine_before.probes_implied);
    state.counters["probes_executed"] =
        benchmark::Counter(executed, benchmark::Counter::kAvgIterations);
    state.counters["probes_implied"] =
        benchmark::Counter(implied, benchmark::Counter::kAvgIterations);
    state.counters["probe_reduction"] =
        executed + implied == 0 ? 0 : implied / (executed + implied);
    // Verdict-case throughput: probes/s only counts *executed* probes, which
    // understates pruned rows — implied cases are resolved too, just for
    // free. This is the apples-to-apples rate against an unpruned row.
    state.counters["cases_resolved/s"] =
        benchmark::Counter(executed + implied, benchmark::Counter::kIsRate);
    state.counters["subsumption_prune"] = 1;
  }
}

// The per-probe reset primitive in isolation: dirty a couple of pages (one
// heap allocation), then rewind the shell onto the shared pristine state.
// This is the cost fork mode pays per probe where fresh mode pays
// BM_FreshTestbedBuild.
void BM_StateForkReset(benchmark::State& state) {
  const auto pristine = linker::TestbedState::build(toolkit().catalog(),
                                                    testbed_machine_config(), "bench stdin\n");
  auto shell = pristine->fork("bench-shell");
  for (auto _ : state) {
    benchmark::DoNotOptimize(shell->alloc_cstring("dirty a heap page"));
    pristine->reset(*shell);
  }
  const mem::CowStats stats = shell->machine().mem().cow_stats();
  state.counters["pages_dropped/reset"] = benchmark::Counter(
      static_cast<double>(stats.pages_dropped), benchmark::Counter::kAvgIterations);
  state.counters["cow_states"] = g_cow_ok ? 1 : 0;
}

// The fresh-mode per-probe cost: construct a process and load the whole
// catalog from scratch — what every probe paid before testbed states forked.
void BM_FreshTestbedBuild(benchmark::State& state) {
  const linker::LibraryCatalog& catalog = toolkit().catalog();
  for (auto _ : state) {
    linker::Process process("bench-fresh", testbed_machine_config());
    process.state().stdin_content = "bench stdin\n";
    for (const std::string& soname : catalog.sonames()) {
      process.load_library(catalog.find(soname));
    }
    benchmark::DoNotOptimize(process.resolve("strlen"));
  }
}

// Memory footprint of coexisting probe states: take one snapshot per
// iteration (each with a freshly dirtied heap page, like a probe that ran),
// keep them all alive, and report resident bytes per state against the
// analytic deep-copy cost (total mapped bytes a byte-copying snapshot would
// duplicate). states/GB is the campaign-capacity headline: how many probe
// states fit in a gigabyte.
void BM_CoexistingStates(benchmark::State& state) {
  const auto pristine = linker::TestbedState::build(toolkit().catalog(),
                                                    testbed_machine_config(), "bench stdin\n");
  auto shell = pristine->fork("bench-shell");
  std::vector<linker::Process::Snapshot> states;
  states.reserve(4096);
  const std::uint64_t rss_before = rss_bytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shell->alloc_cstring("one page of probe dirt"));
    states.push_back(shell->snapshot());
  }
  const std::uint64_t rss_after = rss_bytes();
  std::uint64_t mapped = 0;  // what a deep copy would duplicate per state
  for (const mem::RegionImage& ri : states.back().machine.space.regions()) {
    mapped += ri.size;
  }
  const double count = static_cast<double>(states.size());
  const double per_state =
      rss_after > rss_before ? static_cast<double>(rss_after - rss_before) / count : 0.0;
  state.counters["rss_bytes/state"] = per_state;
  state.counters["deepcopy_bytes/state"] = static_cast<double>(mapped);
  state.counters["states/GB"] =
      per_state > 0 ? (1024.0 * 1024.0 * 1024.0) / per_state : 0.0;
  state.counters["cow_states"] = g_cow_ok ? 1 : 0;
}

// The toolkit-level derive path: first call runs the campaign, the rest hit
// the (soname, fingerprint, config) cache — the speedup users of
// derive_robust_api actually observe across repeated derives.
void BM_CachedDerive(benchmark::State& state, const std::string& soname) {
  core::Toolkit local;
  (void)local.derive_robust_api(soname, config()).value();  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local.derive_robust_api(soname, config()).value().total_probes());
  }
}

void BM_ProbeSingleFunction(benchmark::State& state, const std::string& name) {
  linker::LibraryCatalog catalog = toolkit().catalog();
  injector::FaultInjector injector(catalog, config());
  const simlib::SharedLibrary* lib = toolkit().library("libsimc.so.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.probe_function(*lib, name).value().total_failures);
  }
}

// Repair-mode rows (ISSUE 9): the same §3.4 attack victims under the
// detect-only security wrapper (canary trips, process terminates) and under
// the campaign-derived repair wrapper (overflow clamped, request completes).
// The survived/blocked/repairs counters feed the EXPERIMENTS.md
// detect-vs-repair table; the repair rows carry the repair_mode marker
// counter run_benches.sh greps for, attesting the artifact was produced by a
// tree with repair-mode wrappers compiled in.
void BM_AttackResponse(benchmark::State& state, bool heap, bool repair) {
  const core::Toolkit& tk = toolkit();
  std::shared_ptr<gen::ComposedWrapper> wrapper;
  if (repair) {
    const auto campaign = tk.derive_robust_api("libsimc.so.1", config()).value();
    wrapper = tk.repair_wrapper("libsimc.so.1", campaign).value();
  } else {
    wrapper = tk.security_wrapper("libsimc.so.1").value();
  }
  attacks::AttackResult result;
  std::uint64_t repairs = 0;
  for (auto _ : state) {
    incident::FlightRecorder recorder;
    result = heap ? attacks::run_heap_smash_attack(tk.catalog(), {wrapper}, false, &recorder)
                  : attacks::run_stack_smash_attack(tk.catalog(), {wrapper}, &recorder);
    repairs += recorder.repairs_applied();
    benchmark::DoNotOptimize(result.outcome.kind);
  }
  state.counters["survived"] = result.survived ? 1 : 0;
  state.counters["blocked"] = result.blocked_by_wrapper ? 1 : 0;
  state.counters["hijacked"] = result.hijack_succeeded ? 1 : 0;
  state.counters["repairs/run"] = benchmark::Counter(
      static_cast<double>(repairs), benchmark::Counter::kAvgIterations);
  if (repair) state.counters["repair_mode"] = 1;
}

// Repair-policy derivation from an already-memoized campaign: the marginal
// cost --repair adds to a warm derive, plus the derived-rule census.
void BM_RepairPolicyDerive(benchmark::State& state, const std::string& soname) {
  core::Toolkit local;
  (void)local.derive_robust_api(soname, config()).value();  // warm the campaign
  const auto campaign = local.derive_robust_api(soname, config()).value();
  const simlib::SharedLibrary* lib = local.library(soname);
  std::size_t rules = 0;
  for (auto _ : state) {
    const auto policy = gen::derive_repair_policy(campaign, *lib).value();
    rules = policy.rule_count();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["repair_mode"] = 1;
}

void BM_SpecXmlSerialize(benchmark::State& state) {
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::serialize(campaign.to_xml()).size());
  }
}

void BM_SpecXmlParse(benchmark::State& state) {
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();
  const std::string doc = xml::serialize(campaign.to_xml());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector::CampaignResult::from_xml(xml::parse(doc).value()).value().specs.size());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_fresh_jobs1, "libsimc.so.1", 1, false, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_fork_jobs1, "libsimc.so.1", 1, true, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_fork_jobs8, "libsimc.so.1", 8, true, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_fresh_jobs1, "libsimio.so.1", 1, false, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_fork_jobs1, "libsimio.so.1", 1, true, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_fork_jobs8, "libsimio.so.1", 8, true, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimm_fresh_jobs1, "libsimm.so.1", 1, false, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimm_fork_jobs8, "libsimm.so.1", 8, true, false)
    ->Unit(benchmark::kMillisecond);
// Pruned twins of the fork rows: same libraries, same engine, subsumption
// pruning on — the wall-time ratio against the matching unpruned row is the
// campaign speedup the lattice walk buys.
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_pruned_fork_jobs1, "libsimc.so.1", 1, true, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_pruned_fork_jobs8, "libsimc.so.1", 8, true, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_pruned_fork_jobs1, "libsimio.so.1", 1, true, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimm_pruned_fork_jobs1, "libsimm.so.1", 1, true, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StateForkReset)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FreshTestbedBuild)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CoexistingStates)->Iterations(2048)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CachedDerive, libsimc, "libsimc.so.1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ProbeSingleFunction, strcpy, "strcpy")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ProbeSingleFunction, atoi, "atoi")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpecXmlSerialize)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpecXmlParse)->Unit(benchmark::kMicrosecond);
// Detect-only vs repair-mode outcomes on both §3.4 attacks (EXPERIMENTS.md).
BENCHMARK_CAPTURE(BM_AttackResponse, heap_smash_detect, true, false)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_AttackResponse, heap_smash_repair, true, true)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_AttackResponse, stack_smash_detect, false, false)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_AttackResponse, stack_smash_repair, false, true)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_RepairPolicyDerive, libsimc, "libsimc.so.1")
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  g_cow_ok = cow_self_check();
  if (!g_cow_ok) {
    std::fprintf(stderr,
                 "bench_fig2: COW self-check FAILED — this tree snapshots without "
                 "copy-on-write state; refusing to publish numbers.\n");
    return 1;
  }
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
