// Experiment F2 — Fig 2: the fault-injection pipeline deriving the robust
// API of a shared library.
//
// Regenerates: the Fig 2 report for every stock library (probes run,
// robustness failures found, weakest safe argument types per function), plus
// google-benchmark timings of the pipeline's stages (campaign per library,
// per-function probing, spec XML serialization).
//
// Expected shape (paper §2.2 and Ballista [6]): the string/memory family is
// riddled with robustness failures (most functions fail on NULL/wild/
// unterminated arguments); the value-in/value-out math library has none.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

injector::InjectorConfig config() {
  injector::InjectorConfig cfg;
  cfg.seed = 2003;
  cfg.variants = 2;
  return cfg;
}

void print_report() {
  std::printf("==== Fig 2: robust-API derivation (fault-injection campaigns) ====\n\n");
  for (const std::string& soname : toolkit().list_libraries()) {
    const auto campaign = toolkit().derive_robust_api(soname, config()).value();
    std::printf("%s\n", campaign.to_table().c_str());
    const double failure_rate =
        campaign.total_probes() == 0
            ? 0.0
            : 100.0 * static_cast<double>(campaign.total_failures()) /
                  static_cast<double>(campaign.total_probes());
    std::printf("failure rate: %.1f%% of probes; %zu/%zu functions non-robust\n\n",
                failure_rate, campaign.functions_with_failures(), campaign.specs.size());
  }
}

// Campaign throughput, measured on the FaultInjector itself: the toolkit's
// derive cache would otherwise serve every iteration after the first from
// memory. One configuration per engine mode:
//   fresh/jobs:1    — the pre-engine baseline (rebuild a process per probe),
//   snapshot/jobs:1 — per-worker snapshot restore between probes,
//   snapshot/jobs:8 — snapshot restore + 8 worker threads.
// All three produce byte-identical campaign XML (enforced by
// test_injector_parallel); only the probes/s counter may differ.
void BM_CampaignEngine(benchmark::State& state, const std::string& soname, int jobs,
                       bool snapshot_reset) {
  injector::InjectorConfig cfg = config();
  cfg.jobs = jobs;
  cfg.snapshot_reset = snapshot_reset;
  const linker::LibraryCatalog& catalog = toolkit().catalog();
  const simlib::SharedLibrary* lib = toolkit().library(soname);
  injector::FaultInjector injector(catalog, cfg);
  std::uint64_t probes_before = injector.probes_executed();
  for (auto _ : state) {
    const auto campaign = injector.run_campaign(*lib).value();
    benchmark::DoNotOptimize(campaign.total_failures());
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(injector.probes_executed() - probes_before),
      benchmark::Counter::kIsRate);
}

// The toolkit-level derive path: first call runs the campaign, the rest hit
// the (soname, fingerprint, config) cache — the speedup users of
// derive_robust_api actually observe across repeated derives.
void BM_CachedDerive(benchmark::State& state, const std::string& soname) {
  core::Toolkit local;
  (void)local.derive_robust_api(soname, config()).value();  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local.derive_robust_api(soname, config()).value().total_probes());
  }
}

void BM_ProbeSingleFunction(benchmark::State& state, const std::string& name) {
  linker::LibraryCatalog catalog = toolkit().catalog();
  injector::FaultInjector injector(catalog, config());
  const simlib::SharedLibrary* lib = toolkit().library("libsimc.so.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.probe_function(*lib, name).value().total_failures);
  }
}

void BM_SpecXmlSerialize(benchmark::State& state) {
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::serialize(campaign.to_xml()).size());
  }
}

void BM_SpecXmlParse(benchmark::State& state) {
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();
  const std::string doc = xml::serialize(campaign.to_xml());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector::CampaignResult::from_xml(xml::parse(doc).value()).value().specs.size());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_fresh_jobs1, "libsimc.so.1", 1, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_snapshot_jobs1, "libsimc.so.1", 1, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimc_snapshot_jobs8, "libsimc.so.1", 8, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_fresh_jobs1, "libsimio.so.1", 1, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_snapshot_jobs1, "libsimio.so.1", 1, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimio_snapshot_jobs8, "libsimio.so.1", 8, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimm_fresh_jobs1, "libsimm.so.1", 1, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignEngine, libsimm_snapshot_jobs8, "libsimm.so.1", 8, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CachedDerive, libsimc, "libsimc.so.1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ProbeSingleFunction, strcpy, "strcpy")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ProbeSingleFunction, atoi, "atoi")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpecXmlSerialize)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpecXmlParse)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
