// Experiment A1 — ablation of the micro-generator composition (the design
// choice DESIGN.md calls out): per-call cost as a function of the number of
// composed micro-generators, 1 through 6 (the full Fig 3 set), in both
// simulated cycles and real time.
//
// Expected shape: cost grows roughly linearly with the number of composed
// features — each micro-generator contributes an independent constant —
// validating the "only pay for the features you compose" architecture.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

// Feature stack, in Fig 3 order; prototype/caller are structural (free), so
// the ablation adds the four measurable features one at a time, then the
// trace feature on top.
std::vector<gen::MicroGeneratorPtr> feature_stack(int features) {
  std::vector<gen::MicroGeneratorPtr> gens;
  gens.push_back(gen::prototype_gen());
  if (features >= 1) gens.push_back(gen::exectime_gen());
  if (features >= 2) gens.push_back(gen::collect_errors_gen());
  if (features >= 3) gens.push_back(gen::func_errors_gen());
  if (features >= 4) gens.push_back(gen::call_counter_gen());
  if (features >= 5) gens.push_back(gen::log_call_gen());
  gens.push_back(gen::caller_gen());
  return gens;
}

std::unique_ptr<linker::Process> make_process(int features) {
  auto proc = testbed::make_process("ablation");
  if (features >= 0) {
    gen::WrapperBuilder builder("ablation-" + std::to_string(features));
    for (const auto& g : feature_stack(features)) builder.add(g);
    proc->preload(builder.build(testbed::libsimc()).value());
  }
  return proc;
}

std::uint64_t cycles_per_call(int features) {
  auto proc = make_process(features);
  const mem::Addr s = proc->rodata_cstring("ablation-probe");
  constexpr int kCalls = 2000;
  const std::uint64_t before = proc->machine().rdtsc();
  for (int i = 0; i < kCalls; ++i) proc->call("strlen", {SimValue::ptr(s)});
  return (proc->machine().rdtsc() - before) / kCalls;
}

void print_report() {
  std::printf("==== A1: per-call cost vs number of composed micro-generators ====\n\n");
  std::printf("micro-generators              cycles/strlen   delta\n");
  std::printf("----------------------------------------------------\n");
  const char* labels[] = {"prototype+caller only",
                          "+ function exectime",
                          "+ collect errors",
                          "+ func errors",
                          "+ call counter (Fig 3 set)",
                          "+ log call (trace)"};
  std::uint64_t prev = 0;
  for (int features = 0; features <= 5; ++features) {
    const std::uint64_t cycles = cycles_per_call(features);
    std::printf("%-28s %14llu   %+lld\n", labels[features],
                static_cast<unsigned long long>(cycles),
                features == 0 ? 0LL : static_cast<long long>(cycles - prev));
    prev = cycles;
  }
  std::printf("\n");
}

void BM_AblationCall(benchmark::State& state) {
  const int features = static_cast<int>(state.range(0));
  auto proc = make_process(features);
  const mem::Addr s = proc->rodata_cstring("ablation-probe");
  for (auto _ : state) {
    proc->machine().reset_steps();  // keep the hang oracle out of steady-state timing
    benchmark::DoNotOptimize(proc->call("strlen", {SimValue::ptr(s)}));
  }
  state.counters["features"] = features;
}

void BM_UnwrappedBaseline(benchmark::State& state) {
  auto proc = testbed::make_process("baseline");
  const mem::Addr s = proc->rodata_cstring("ablation-probe");
  for (auto _ : state) {
    proc->machine().reset_steps();
    benchmark::DoNotOptimize(proc->call("strlen", {SimValue::ptr(s)}));
  }
}

}  // namespace

BENCHMARK(BM_UnwrappedBaseline);
BENCHMARK(BM_AblationCall)->DenseRange(0, 5, 1);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
