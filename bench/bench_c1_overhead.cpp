// Experiment C1 — the paper's "low overhead during normal operations" and
// "an application should only pay the overhead for the protection it
// actually needs".
//
// Regenerates: a per-call overhead table — direct call vs each wrapper type
// vs stacked wrappers — in both real time (google-benchmark) and simulated
// cycles (the deterministic metric the profiling wrapper itself reports),
// plus the bypass cost for non-wrapped symbols.
//
// Expected shape: each wrapper adds a small constant per call; costs add
// roughly linearly when wrappers stack; calls to symbols a wrapper does not
// wrap pay (almost) nothing — the "pay for what you need" property.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"

using namespace healers;
using simlib::SimValue;

namespace {

core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

const injector::CampaignResult& campaign() {
  static const injector::CampaignResult result = [] {
    injector::InjectorConfig config;
    config.seed = 1;
    config.variants = 1;
    return toolkit().derive_robust_api("libsimc.so.1", config).value();
  }();
  return result;
}

linker::Executable bench_exe() {
  linker::Executable exe;
  exe.name = "bench";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"strlen", "strcpy", "atoi", "malloc", "free"};
  return exe;
}

enum class Setup { kBare, kProfiling, kRobustness, kSecurity, kAllThree };

std::unique_ptr<linker::Process> make_process(Setup setup) {
  std::vector<linker::InterpositionPtr> preloads;
  switch (setup) {
    case Setup::kBare:
      break;
    case Setup::kProfiling:
      preloads.push_back(toolkit().profiling_wrapper("libsimc.so.1").value());
      break;
    case Setup::kRobustness:
      preloads.push_back(toolkit().robustness_wrapper("libsimc.so.1", campaign()).value());
      break;
    case Setup::kSecurity:
      preloads.push_back(toolkit().security_wrapper("libsimc.so.1").value());
      break;
    case Setup::kAllThree:
      preloads.push_back(toolkit().profiling_wrapper("libsimc.so.1").value());
      preloads.push_back(toolkit().robustness_wrapper("libsimc.so.1", campaign()).value());
      preloads.push_back(toolkit().security_wrapper("libsimc.so.1").value());
      break;
  }
  return toolkit().spawn(bench_exe(), std::move(preloads));
}

const char* setup_name(Setup setup) {
  switch (setup) {
    case Setup::kBare: return "none (direct)";
    case Setup::kProfiling: return "profiling";
    case Setup::kRobustness: return "robustness";
    case Setup::kSecurity: return "security";
    case Setup::kAllThree: return "all three stacked";
  }
  return "?";
}

// Simulated-cycle cost of one strlen call under a setup, for a short
// ("benchmark") or long (256-char) string: the wrapper adds a CONSTANT, so
// the relative overhead shrinks as the call does real work — the paper's
// "low overhead during normal operations".
std::uint64_t cycles_per_call(Setup setup, bool long_string) {
  auto proc = make_process(setup);
  const mem::Addr s =
      proc->rodata_cstring(long_string ? std::string(256, 'x') : std::string("benchmark"));
  constexpr int kCalls = 1000;
  const std::uint64_t before = proc->machine().rdtsc();
  for (int i = 0; i < kCalls; ++i) proc->call("strlen", {SimValue::ptr(s)});
  return (proc->machine().rdtsc() - before) / kCalls;
}

void print_report() {
  std::printf("==== C1: per-call overhead by wrapper type (simulated cycles) ====\n\n");
  std::printf("wrapper            strlen(9B)  overhead   strlen(256B)  overhead\n");
  std::printf("------------------------------------------------------------------\n");
  const std::uint64_t base_short = cycles_per_call(Setup::kBare, false);
  const std::uint64_t base_long = cycles_per_call(Setup::kBare, true);
  for (const Setup setup : {Setup::kBare, Setup::kProfiling, Setup::kRobustness,
                            Setup::kSecurity, Setup::kAllThree}) {
    const std::uint64_t cs = cycles_per_call(setup, false);
    const std::uint64_t cl = cycles_per_call(setup, true);
    std::printf("%-18s %10llu  %+7lld   %12llu  %+7lld (%.1f%%)\n", setup_name(setup),
                static_cast<unsigned long long>(cs), static_cast<long long>(cs - base_short),
                static_cast<unsigned long long>(cl), static_cast<long long>(cl - base_long),
                100.0 * static_cast<double>(cl - base_long) / static_cast<double>(base_long));
  }
  std::printf("\n(the wrapper cost is a small CONSTANT per call; real-time costs follow)\n\n");
}

void BM_Call(benchmark::State& state, Setup setup, const char* symbol) {
  auto proc = make_process(setup);
  const mem::Addr s = proc->rodata_cstring("benchmark");
  std::vector<SimValue> args;
  if (std::string(symbol) == "strlen" || std::string(symbol) == "atoi") {
    args = {SimValue::ptr(s)};
  }
  for (auto _ : state) {
    proc->machine().reset_steps();  // keep the hang oracle out of steady-state timing
    benchmark::DoNotOptimize(proc->call(symbol, args));
  }
}

void BM_MallocFree(benchmark::State& state, Setup setup) {
  auto proc = make_process(setup);
  for (auto _ : state) {
    proc->machine().reset_steps();
    const SimValue p = proc->call("malloc", {SimValue::integer(64)});
    proc->call("free", {p});
    benchmark::DoNotOptimize(p);
  }
}

// "Pay only for what you need": a profiling wrapper over libsimc must add
// ~nothing to calls into libsimm (which it does not wrap).
void BM_NonWrappedBypass(benchmark::State& state, bool with_wrapper) {
  linker::Executable exe;
  exe.name = "bypass";
  exe.needed = {"libsimc.so.1", "libsimm.so.1"};
  exe.undefined = {"sqrt"};
  std::vector<linker::InterpositionPtr> preloads;
  if (with_wrapper) preloads.push_back(toolkit().profiling_wrapper("libsimc.so.1").value());
  auto proc = toolkit().spawn(exe, std::move(preloads));
  for (auto _ : state) {
    proc->machine().reset_steps();
    benchmark::DoNotOptimize(proc->call("sqrt", {SimValue::fp(1764.0)}));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Call, strlen_direct, Setup::kBare, "strlen");
BENCHMARK_CAPTURE(BM_Call, strlen_profiling, Setup::kProfiling, "strlen");
BENCHMARK_CAPTURE(BM_Call, strlen_robustness, Setup::kRobustness, "strlen");
BENCHMARK_CAPTURE(BM_Call, strlen_security, Setup::kSecurity, "strlen");
BENCHMARK_CAPTURE(BM_Call, strlen_all_three, Setup::kAllThree, "strlen");
BENCHMARK_CAPTURE(BM_Call, atoi_direct, Setup::kBare, "atoi");
BENCHMARK_CAPTURE(BM_Call, atoi_robustness, Setup::kRobustness, "atoi");
BENCHMARK_CAPTURE(BM_MallocFree, direct, Setup::kBare);
BENCHMARK_CAPTURE(BM_MallocFree, security, Setup::kSecurity);
BENCHMARK_CAPTURE(BM_NonWrappedBypass, no_wrapper, false);
BENCHMARK_CAPTURE(BM_NonWrappedBypass, wrapper_elsewhere, true);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
