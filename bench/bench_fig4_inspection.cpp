// Experiment F4 — Fig 4 / demo §3.2: application-centric inspection.
//
// Regenerates: the Fig 4 view (linked libraries + undefined functions, with
// providers) for the demo executables, then benchmarks inspection and the
// §3.1 library-centric operations (listing, declaration-file emission) so
// the "toolkit responsiveness" story is quantified.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

linker::Executable big_app() {
  linker::Executable exe;
  exe.name = "bigapp";
  exe.needed = {"libsimc.so.1", "libsimio.so.1", "libsimm.so.1"};
  // Import everything the stock libraries define plus a few misses.
  for (const std::string& soname : toolkit().list_libraries()) {
    const auto functions = toolkit().list_functions(soname);
    for (const std::string& fn : functions.value()) exe.undefined.push_back(fn);
  }
  exe.undefined.emplace_back("gethostbyname");
  exe.undefined.emplace_back("pthread_create");
  return exe;
}

void print_report() {
  std::printf("==== Fig 4: application-centric extraction ====\n\n");
  std::printf("%s\n", toolkit().inspect(attacks::heap_victim_executable()).to_text().c_str());
  const linker::LinkMap big = toolkit().inspect(big_app());
  std::printf("executable: %s — %zu undefined symbols, %zu unresolved\n\n",
              big.executable.c_str(), big.resolutions.size(), big.unresolved.size());
  std::printf("library-centric view (3.1): %zu libraries installed\n",
              toolkit().list_libraries().size());
  for (const std::string& soname : toolkit().list_libraries()) {
    const auto decls = toolkit().declaration_xml(soname);
    std::printf("  %-16s declaration file: %zu bytes\n", soname.c_str(),
                xml::serialize(decls.value()).size());
  }
  std::printf("\n");
}

void BM_InspectSmallApp(benchmark::State& state) {
  const linker::Executable exe = attacks::heap_victim_executable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(toolkit().inspect(exe).resolutions.size());
  }
}

void BM_InspectBigApp(benchmark::State& state) {
  const linker::Executable exe = big_app();
  for (auto _ : state) {
    benchmark::DoNotOptimize(toolkit().inspect(exe).resolutions.size());
  }
  state.counters["symbols"] = static_cast<double>(exe.undefined.size());
}

void BM_DeclarationXml(benchmark::State& state, const std::string& soname) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::serialize(toolkit().declaration_xml(soname).value()).size());
  }
}

void BM_SpawnProcess(benchmark::State& state) {
  const linker::Executable exe = attacks::heap_victim_executable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(toolkit().spawn(exe));
  }
}

}  // namespace

BENCHMARK(BM_InspectSmallApp)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_InspectBigApp)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DeclarationXml, libsimc, "libsimc.so.1")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpawnProcess)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
