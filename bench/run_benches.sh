#!/usr/bin/env bash
# Runs the checked-in-JSON benchmarks and refreshes their outputs at the
# repo root (committed so throughput regressions show up in review):
#   BENCH_fig2.json  campaign-engine throughput (Fig 2)
#   BENCH_f6.json    fleet telemetry ingest (docs/sec, XML vs binary codec)
#   BENCH_c1.json    per-call wrapper overhead (Table C1)
#   BENCH_s1.json    derivation service (requests/sec: cold vs warm vs
#                    cache-file-warm)
#   BENCH_f7.json    virtual-time fleet simulation (simulated hosts/sec,
#                    end-to-end ingest docs/sec, shed/drop rates at overload)
#   BENCH_d6.json    demand-driven surface debloating (unmapped-symbol %,
#                    resident-page reduction, scoped-campaign speedup)
#
# Benchmarks are only meaningful from an optimized, assertion-free build, so
# this script builds and uses the `release` preset (-O2 -DNDEBUG) by default
# and refuses Debug build trees.
#
# Note: the "library_build_type" field in the emitted JSON context is
# google-benchmark reporting how the *system libbenchmark* was packaged —
# it is not the build type of this repo's code (see CMakeCache check below).
#
# Usage: bench/run_benches.sh [build-dir]   (default: build-release via the
#        release preset; pass an explicit tree to override)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ $# -ge 1 ]]; then
  build="$1"
else
  build="$root/build-release"
  cmake --preset release -S "$root" >/dev/null
fi

# Refuse debug trees, warn on anything that is not a true Release build:
# timings from -O0 or assert-laden binaries are not comparable.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$build_type" == "Debug" || "$build_type" == "" ]]; then
  echo "error: '$build' is a ${build_type:-unconfigured} tree; benchmarks need the" >&2
  echo "       release preset (cmake --preset release). Refusing to run." >&2
  exit 1
fi
if [[ "$build_type" != "Release" ]]; then
  echo "warning: '$build' is a $build_type tree, not Release; timings will be" >&2
  echo "         pessimistic. Prefer: bench/run_benches.sh (uses the release preset)" >&2
fi

# The benches with committed JSON artifacts. This one list drives both the
# build below and the skipped-bench report at the bottom, so a bench added
# here can't silently stay in the "skipped" listing (or vice versa).
ran=("bench_fig2_robust_api" "bench_f6_fleet_ingest" "bench_c1_overhead" "bench_s1_derive_service" "bench_f7_fleet_sim" "bench_d6_debloat")

cmake --build "$build" -j --target "${ran[@]}"

"$build/bench/bench_fig2_robust_api" \
  --benchmark_out="$root/BENCH_fig2.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

# Guard: the fig2 fork-vs-fresh comparison is only meaningful when COW state
# storage is compiled in. The bench binary self-checks at startup (and exits
# nonzero on failure, which set -e catches above); the marker counter it
# stamps on the state rows must also land in the artifact — a JSON without it
# came from a tree with COW compiled out or from a stale binary.
if ! grep -q '"cow_states"' "$root/BENCH_fig2.json"; then
  echo "error: BENCH_fig2.json lacks the cow_states marker — the bench tree" >&2
  echo "       has COW testbed states compiled out; refusing the artifact." >&2
  exit 1
fi

# Guard: the pruned campaign rows must carry the subsumption_prune marker —
# without it the artifact came from a binary predating (or stripped of) the
# subsumption-pruned lattice walk, and the pruned-vs-unpruned speedup rows
# the JSON is committed for are missing.
if ! grep -q '"subsumption_prune"' "$root/BENCH_fig2.json"; then
  echo "error: BENCH_fig2.json lacks the subsumption_prune marker — the pruned" >&2
  echo "       campaign rows are missing; refusing the artifact." >&2
  exit 1
fi

# Guard: the detect-vs-repair attack rows must carry the repair_mode marker —
# a JSON without it predates the repair wrapper family (or came from a binary
# with the repair rows stripped), and the EXPERIMENTS.md detect/repair
# comparison it backs would silently go stale.
if ! grep -q '"repair_mode"' "$root/BENCH_fig2.json"; then
  echo "error: BENCH_fig2.json lacks the repair_mode marker — the repair-mode" >&2
  echo "       attack rows are missing; refusing the artifact." >&2
  exit 1
fi

echo "wrote $root/BENCH_fig2.json"

"$build/bench/bench_f6_fleet_ingest" \
  --benchmark_out="$root/BENCH_f6.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $root/BENCH_f6.json"

# The overhead rows are ~100 ns differences between ~100 ns calls, so they
# need more smoothing than the throughput benches: longer runs, and medians
# over repetitions so one noisy interval cannot skew a committed number.
"$build/bench/bench_c1_overhead" \
  --benchmark_out="$root/BENCH_c1.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "wrote $root/BENCH_c1.json"

"$build/bench/bench_s1_derive_service" \
  --benchmark_out="$root/BENCH_s1.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $root/BENCH_s1.json"

"$build/bench/bench_f7_fleet_sim" \
  --benchmark_out="$root/BENCH_f7.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

# Guard: every F7 row must carry the virtual_time marker counter — it is the
# bench's own attestation that the numbers came from the discrete-event
# virtual-clock path (the bench also self-checks the collector/server
# accounting identities and exits nonzero on violation, which set -e catches
# above). A JSON without the marker came from a stale or foreign binary.
if ! grep -q '"virtual_time"' "$root/BENCH_f7.json"; then
  echo "error: BENCH_f7.json lacks the virtual_time marker — it was not" >&2
  echo "       produced by the virtual-clock fleet sim; refusing the artifact." >&2
  exit 1
fi

echo "wrote $root/BENCH_f7.json"

"$build/bench/bench_d6_debloat" \
  --benchmark_out="$root/BENCH_d6.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

# Guard: every D6 row must carry the demand_loading marker counter — the
# bench's own attestation that the run went through the load barrier and
# cleared the >= 30% unmapped floor (it self-checks at startup and exits
# nonzero below the floor, which set -e catches above). A JSON without the
# marker came from a stale or foreign binary.
if ! grep -q '"demand_loading"' "$root/BENCH_d6.json"; then
  echo "error: BENCH_d6.json lacks the demand_loading marker — it was not" >&2
  echo "       produced by the demand-loading debloat bench; refusing the artifact." >&2
  exit 1
fi

echo "wrote $root/BENCH_d6.json"

# Every BENCH_*.json at the repo root must be one this script owns: a stray
# name (a typo'd output path, a bench renamed without its artifact) would sit
# in review forever looking like a tracked result nobody regenerates.
known_json=("BENCH_fig2.json" "BENCH_f6.json" "BENCH_c1.json" "BENCH_s1.json" "BENCH_f7.json" "BENCH_d6.json")
unknown=0
for artifact in "$root"/BENCH_*.json; do
  [[ -e "$artifact" ]] || continue
  name="$(basename "$artifact")"
  ok=0
  for k in "${known_json[@]}"; do [[ "$name" == "$k" ]] && ok=1; done
  if [[ "$ok" == 0 ]]; then
    echo "error: unknown benchmark artifact '$name' at the repo root;" >&2
    echo "       add it to known_json in bench/run_benches.sh or delete it." >&2
    unknown=1
  fi
done
[[ "$unknown" == 0 ]] || exit 1

# Be explicit about coverage: the figure/demo benches (including the D5
# detect-vs-repair table) regenerate paper numbers on demand but have no
# committed JSON, so they are NOT run here.
echo "skipped (no committed JSON; run from $build/bench/ by hand):"
for src in "$root"/bench/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  ok=0
  for r in "${ran[@]}"; do [[ "$name" == "$r" ]] && ok=1; done
  [[ "$ok" == 0 ]] && echo "  $name"
done
exit 0
