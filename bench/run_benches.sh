#!/usr/bin/env bash
# Runs the checked-in-JSON benchmarks and refreshes their outputs at the
# repo root (committed so throughput regressions show up in review):
#   BENCH_fig2.json  campaign-engine throughput (Fig 2)
#   BENCH_f6.json    fleet telemetry ingest (docs/sec, XML vs binary codec)
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"

cmake --build "$build" -j --target bench_fig2_robust_api bench_f6_fleet_ingest

"$build/bench/bench_fig2_robust_api" \
  --benchmark_out="$root/BENCH_fig2.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $root/BENCH_fig2.json"

"$build/bench/bench_f6_fleet_ingest" \
  --benchmark_out="$root/BENCH_f6.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $root/BENCH_f6.json"
