#!/bin/sh
# Runs the Fig 2 campaign-engine benchmark and writes its google-benchmark
# JSON to BENCH_fig2.json at the repo root (checked in so engine-throughput
# regressions show up in review).
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"

cmake --build "$build" -j --target bench_fig2_robust_api

"$build/bench/bench_fig2_robust_api" \
  --benchmark_out="$root/BENCH_fig2.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $root/BENCH_fig2.json"
