// Experiment F3 — Fig 3: flexible wrapper generation from micro-generators.
//
// Regenerates: the exact Fig 3 wrapper source for wctrans (six standard
// micro-generators, function id 1206), then benchmarks the generator
// architecture: source emission per function and per library, and runtime
// wrapper construction (hook chains) per feature set.
//
// Expected shape: generation is cheap (microseconds per function) and cost
// scales linearly with the number of wrapped functions — the property that
// makes per-release regeneration ("adapt quickly to new software releases")
// practical.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;

namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

void print_report() {
  std::printf("==== Fig 3: generated wrapper function for wctrans ====\n\n");
  const simlib::Symbol* symbol = toolkit().library("libsimc.so.1")->find("wctrans");
  const auto page = parser::parse_manpage(symbol->manpage).value();
  gen::GenContext ctx{page.proto, 1206, nullptr, &page};
  std::printf("%s\n", gen::emit_wrapper_source(ctx, wrappers::fig3_generators()).c_str());

  gen::WrapperBuilder profiling("profiling-wrapper");
  for (const auto& g : wrappers::fig3_generators()) profiling.add(g);
  const auto source = profiling.emit_library_source(*toolkit().library("libsimc.so.1"));
  std::printf("whole-library wrapper source: %zu bytes for %zu functions\n\n",
              source.value().size(), toolkit().library("libsimc.so.1")->size());
}

void BM_EmitOneFunction(benchmark::State& state) {
  const simlib::Symbol* symbol = toolkit().library("libsimc.so.1")->find("wctrans");
  const auto page = parser::parse_manpage(symbol->manpage).value();
  gen::GenContext ctx{page.proto, 1206, nullptr, &page};
  const auto gens = wrappers::fig3_generators();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::emit_wrapper_source(ctx, gens).size());
  }
}

void BM_EmitWholeLibrary(benchmark::State& state, const std::string& soname) {
  gen::WrapperBuilder builder("profiling-wrapper");
  for (const auto& g : wrappers::fig3_generators()) builder.add(g);
  const simlib::SharedLibrary* lib = toolkit().library(soname);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.emit_library_source(*lib).value().size());
  }
  state.counters["functions"] = static_cast<double>(lib->size());
}

void BM_BuildRuntimeWrapper(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wrappers::make_profiling_wrapper(*toolkit().library("libsimc.so.1")).value());
  }
}

void BM_BuildSecurityWrapper(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wrappers::make_security_wrapper(*toolkit().library("libsimc.so.1")).value());
  }
}

}  // namespace

BENCHMARK(BM_EmitOneFunction)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_EmitWholeLibrary, libsimc, "libsimc.so.1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_EmitWholeLibrary, libsimm, "libsimm.so.1")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildRuntimeWrapper)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildSecurityWrapper)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
