// Experiment F6 — fleet telemetry ingest (ROADMAP: sharding, batching).
//
// Regenerates: a fleet of >= 8 simulated hosts emitting >= 10k profile
// documents (mixed XML / binary wire encoding), ingested by the sharded
// FleetCollector — then benchmarks ingest throughput (docs/sec) across
// shard/worker configurations and the XML-vs-binary encode/decode cost.
//
// Expected shape: binary encode/decode is several times cheaper than the
// XML round-trip (no parser), ingest scales with workers until decode cost
// is amortized, and the rendered summary is identical for every config.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "fleet/simulator.hpp"
#include "fleet/wire.hpp"
#include "profile/report.hpp"
#include "xml/xml.hpp"

using namespace healers;

namespace {

constexpr unsigned kHosts = 8;
constexpr unsigned kDocsPerHost = 1280;  // 8 x 1280 = 10240 documents

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

// The shared fleet corpus: generated once, reused by every benchmark.
const std::vector<std::string>& documents() {
  static const std::vector<std::string> docs = [] {
    fleet::SimulatorConfig config;
    config.hosts = kHosts;
    config.docs_per_host = kDocsPerHost;
    config.jobs = 0;
    return fleet::FleetSimulator(toolkit(), config).run();
  }();
  return docs;
}

// The corpus decoded, and re-encoded as all-XML / all-binary variants.
const std::vector<profile::ProfileReport>& reports() {
  static const std::vector<profile::ProfileReport> reps = [] {
    std::vector<profile::ProfileReport> out;
    out.reserve(documents().size());
    for (const auto& doc : documents()) out.push_back(fleet::decode_document(doc).value());
    return out;
  }();
  return reps;
}

const std::vector<std::string>& xml_documents() {
  static const std::vector<std::string> docs = [] {
    std::vector<std::string> out;
    out.reserve(reports().size());
    for (const auto& rep : reports()) out.push_back(xml::serialize(profile::to_xml(rep)));
    return out;
  }();
  return docs;
}

const std::vector<std::string>& binary_documents() {
  static const std::vector<std::string> docs = [] {
    std::vector<std::string> out;
    out.reserve(reports().size());
    for (const auto& rep : reports()) out.push_back(fleet::encode_binary(rep));
    return out;
  }();
  return docs;
}

std::size_t total_bytes(const std::vector<std::string>& docs) {
  std::size_t bytes = 0;
  for (const auto& doc : docs) bytes += doc.size();
  return bytes;
}

void print_headline() {
  std::printf("==== F6: fleet telemetry ingest ====\n\n");
  const auto& docs = documents();
  std::printf("fleet: %u hosts, %zu documents (%zu XML bytes vs %zu binary bytes)\n", kHosts,
              docs.size(), total_bytes(xml_documents()), total_bytes(binary_documents()));
  fleet::CollectorConfig config;
  config.shards = 8;
  config.workers = 0;
  fleet::FleetCollector collector(config);
  for (const auto& doc : docs) collector.submit(doc);
  collector.flush();
  std::printf("%s\n", collector.render_summary().c_str());
}

void BM_FleetIngest(benchmark::State& state) {
  const auto& docs = documents();
  fleet::CollectorConfig config;
  config.shards = static_cast<unsigned>(state.range(0));
  config.workers = static_cast<unsigned>(state.range(1));
  config.queue_capacity = docs.size();  // throughput run: no shedding
  for (auto _ : state) {
    fleet::FleetCollector collector(config);
    for (const auto& doc : docs) collector.submit(doc);
    collector.flush();
    benchmark::DoNotOptimize(collector.aggregated());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(docs.size()));
  state.counters["documents"] = static_cast<double>(docs.size());
  state.counters["hosts"] = kHosts;
}

void BM_EncodeXml(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& rep : reports()) {
      benchmark::DoNotOptimize(xml::serialize(profile::to_xml(rep)).size());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(reports().size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(total_bytes(xml_documents())));
}

void BM_EncodeBinary(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& rep : reports()) {
      benchmark::DoNotOptimize(fleet::encode_binary(rep).size());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(reports().size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(total_bytes(binary_documents())));
}

void BM_DecodeXml(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& doc : xml_documents()) {
      benchmark::DoNotOptimize(fleet::decode_document(doc).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(xml_documents().size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(total_bytes(xml_documents())));
}

void BM_DecodeBinary(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& doc : binary_documents()) {
      benchmark::DoNotOptimize(fleet::decode_document(doc).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(binary_documents().size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(total_bytes(binary_documents())));
}

}  // namespace

BENCHMARK(BM_FleetIngest)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 0});  // 0 = all cores
BENCHMARK(BM_EncodeXml)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeBinary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecodeXml)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecodeBinary)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_headline();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
