// Experiment S1 — the derivation service (ISSUE 5: hardening-as-a-service).
//
// Regenerates: a request trace (derive + bundle endpoints, XML and binary
// envelopes, across all three stock libraries) served by a DeriveServer in
// three warmth tiers:
//
//   cold            fresh toolkit, every campaign actually runs probes
//   warm            same server answering the trace again (response cache)
//   cache-file-warm fresh toolkit preloaded from a serialized spec cache —
//                   the "server restarted overnight" case: zero probes, but
//                   full decode/serve/encode work
//
// Expected shape: warm >> cache-file-warm >> cold in requests/sec; the gap
// between cold and cache-file-warm is exactly the campaign cost the
// persistent cache saves, and the summary line proves each tier served the
// identical trace (same counters) at its own probe cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "server/derive_server.hpp"
#include "server/protocol.hpp"
#include "server/spec_cache.hpp"

using namespace healers;

namespace {

constexpr unsigned kClients = 8;
constexpr unsigned kRequestsPerClient = 16;  // 128 requests per drain

// The shared submission trace: a pure function of nothing, so every tier
// and every iteration serves identical bytes.
const std::vector<std::string>& trace() {
  static const std::vector<std::string> requests = [] {
    const std::vector<std::string> sonames = {"libsimm.so.1", "libsimio.so.1", "libsimc.so.1"};
    const std::vector<server::BundleKind> bundles = {server::BundleKind::kProfiling,
                                                     server::BundleKind::kSecurity,
                                                     server::BundleKind::kRobustness};
    std::vector<std::string> out;
    std::size_t n = 0;
    for (unsigned client = 0; client < kClients; ++client) {
      for (unsigned request = 0; request < kRequestsPerClient; ++request, ++n) {
        server::DeriveRequest req;
        req.soname = sonames[n % sonames.size()];
        req.seed = 21;
        req.variants = 1;
        if (n % 4 == 3) {
          req.endpoint = server::Endpoint::kBundle;
          req.bundle = bundles[(n / 4) % bundles.size()];
        }
        req.format = n % 2 == 1 ? server::WireFormat::kBinary : server::WireFormat::kXml;
        out.push_back(req.encode());
      }
    }
    return out;
  }();
  return requests;
}

std::uint64_t serve_trace(server::DeriveServer& srv) {
  for (const auto& bytes : trace()) srv.submit(std::string(bytes));
  srv.drain();
  return srv.stats().answered_ok;
}

// The serialized spec cache a cold run would leave behind — what a restarted
// server loads from disk.
const std::vector<core::CachedCampaign>& cache_entries() {
  static const std::vector<core::CachedCampaign> entries = [] {
    core::Toolkit toolkit;
    server::DeriveServer srv(toolkit, {});
    serve_trace(srv);
    const std::string image = server::encode_cache_file(toolkit.export_campaigns());
    return server::decode_cache_file(image).value();
  }();
  return entries;
}

void print_headline() {
  std::printf("==== S1: derivation service (cold / warm / cache-file-warm) ====\n\n");
  core::Toolkit toolkit;
  server::ServerConfig config;
  config.workers = 0;  // all cores
  server::DeriveServer srv(toolkit, config);
  serve_trace(srv);
  const std::uint64_t cold_probes = toolkit.probes_executed();
  serve_trace(srv);  // warm pass: all response-cache hits, zero new probes
  std::printf("%s  probes: %llu cold, %llu after warm pass\n\n", srv.render_summary().c_str(),
              static_cast<unsigned long long>(cold_probes),
              static_cast<unsigned long long>(toolkit.probes_executed()));
}

void BM_ServeCold(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    core::Toolkit toolkit;
    server::ServerConfig config;
    config.workers = workers;
    server::DeriveServer srv(toolkit, config);
    benchmark::DoNotOptimize(serve_trace(srv));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace().size()));
}

void BM_ServeWarm(benchmark::State& state) {
  core::Toolkit toolkit;
  server::ServerConfig config;
  config.workers = static_cast<unsigned>(state.range(0));
  server::DeriveServer srv(toolkit, config);
  serve_trace(srv);  // warm the response cache outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve_trace(srv));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace().size()));
}

void BM_ServeCacheFileWarm(benchmark::State& state) {
  const auto& entries = cache_entries();
  const auto workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    core::Toolkit toolkit;
    toolkit.import_campaigns(entries);
    server::ServerConfig config;
    config.workers = workers;
    server::DeriveServer srv(toolkit, config);
    benchmark::DoNotOptimize(serve_trace(srv));
    if (toolkit.probes_executed() != 0) state.SkipWithError("cache-warm run executed probes");
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace().size()));
}

}  // namespace

BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(0);   // 0 = all cores
BENCHMARK(BM_ServeWarm)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(0);
BENCHMARK(BM_ServeCacheFileWarm)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(0);

int main(int argc, char** argv) {
  print_headline();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
