// Experiment A2 — ablation of the robustness wrapper's knowledge sources.
//
// The paper's robust API comes from TWO places: automated fault-injection
// (the derived checks) and the man pages' semantic annotations (precise
// buffer-size expressions, domains, roles). This ablation replays the full
// Ballista-style campaign against libsimc under three wrapper variants —
// derived-only, annotations-only, both — and reports the residual failure
// counts, quantifying what the automation alone buys and what the size
// expressions add.
//
// Expected shape: derived-only already eliminates the large majority of
// failures (the paper's cost-effectiveness argument for automation);
// annotations-only also does well but misses behaviours the probes
// discover; the union reaches zero.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/toolkit.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;

namespace {

core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

injector::InjectorConfig config() {
  injector::InjectorConfig cfg;
  cfg.seed = 99;
  cfg.variants = 1;
  return cfg;
}

struct AblationResult {
  std::uint64_t probes = 0;
  std::uint64_t failures = 0;
};

AblationResult replay(const simlib::SharedLibrary& lib,
                      const injector::CampaignResult& campaign,
                      std::optional<wrappers::CheckSource> source) {
  AblationResult result;
  for (const injector::RobustSpec& spec : campaign.specs) {
    if (spec.skipped_noreturn) continue;
    const simlib::Symbol* symbol = lib.find(spec.function);
    const auto page = parser::parse_manpage(symbol->manpage).value();
    for (std::size_t i = 0; i < page.proto.params.size(); ++i) {
      for (const lattice::TestTypeId id :
           lattice::test_types_for(page.proto.params[i].type.classify())) {
        for (std::size_t case_index = 0;; ++case_index) {
          auto proc = testbed::make_process();
          proc->state().stdin_content = "a line of console input for the probe\n";
          if (source.has_value()) {
            proc->preload(wrappers::make_robustness_wrapper(lib, campaign, *source).value());
          }
          Rng rng(config().seed + case_index);
          lattice::ValueFactory factory(*proc, rng);
          const auto cases = factory.cases_of(id, config().variants);
          if (case_index >= cases.size()) break;
          std::vector<simlib::SimValue> args;
          for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
            args.push_back(j == i ? cases[case_index].value
                                  : factory.safe_value(page, static_cast<int>(j) + 1));
          }
          ++result.probes;
          if (proc->supervised_call(spec.function, std::move(args)).robustness_failure()) {
            ++result.failures;
          }
        }
      }
    }
  }
  return result;
}

void print_report() {
  std::printf("==== A2: robustness wrapper knowledge-source ablation (libsimc) ====\n\n");
  const simlib::SharedLibrary& lib = *toolkit().library("libsimc.so.1");
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config()).value();

  struct Row {
    const char* label;
    std::optional<wrappers::CheckSource> source;
  };
  const Row rows[] = {
      {"no wrapper (baseline)", std::nullopt},
      {"annotations only", wrappers::CheckSource::kAnnotationsOnly},
      {"derived (fault injection) only", wrappers::CheckSource::kDerivedOnly},
      {"derived + annotations (shipped)", wrappers::CheckSource::kDerivedAndAnnotations},
  };

  std::printf("%-34s  probes  residual failures  eliminated\n", "wrapper variant");
  std::printf("---------------------------------------------------------------------\n");
  std::uint64_t baseline = 0;
  for (const Row& row : rows) {
    const AblationResult result = replay(lib, campaign, row.source);
    if (!row.source.has_value()) baseline = result.failures;
    const double eliminated =
        baseline == 0 ? 0.0
                      : 100.0 * static_cast<double>(baseline - result.failures) /
                            static_cast<double>(baseline);
    std::printf("%-34s  %6llu  %17llu  %9.1f%%\n", row.label,
                static_cast<unsigned long long>(result.probes),
                static_cast<unsigned long long>(result.failures),
                row.source.has_value() ? eliminated : 0.0);
  }
  std::printf("\n");
}

void BM_ReplayDerivedOnly(benchmark::State& state) {
  const simlib::SharedLibrary& lib = *toolkit().library("libsimm.so.1");
  const auto campaign = toolkit().derive_robust_api("libsimm.so.1", config()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replay(lib, campaign, wrappers::CheckSource::kDerivedOnly).probes);
  }
}

}  // namespace

BENCHMARK(BM_ReplayDerivedOnly)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
